"""Multi-host shard screening: TCP shard workers + a fault-tolerant client.

PR 4 made per-shard top-k travel by *manifest path* with a deterministic
cross-shard merge — but every execution plan still lived in one process
tree on one host.  This module adds the missing transport for "catalog
bigger than one machine", shaped like DGL's distributed serving stack
(dumb shard-holding workers, a smart client):

- :class:`ShardWorker` — a stdlib-only ``socketserver`` TCP server that
  opens shards from a :class:`~repro.serving.store.ShardStore` manifest
  and answers per-shard ``screen`` requests plus ``health``/``manifest``
  probes.  Workers hold no model weights: requests carry the weight-free
  kernel *kind* and the precomputed query projections, and every worker
  runs the same :func:`~repro.serving.shards.screen_shard` the serial
  engine runs, so per-shard results are bitwise-equal by construction.
- :class:`RemoteShardExecutor` — the client-side mirror of
  :class:`~repro.serving.executor.ParallelShardExecutor`: per-shard
  fan-out over worker connections with per-request timeouts, bounded
  exponential backoff with deterministic jitter, automatic failover of a
  failed shard request to the next replica, a per-worker circuit breaker
  (consecutive-failure trip, half-open probe recovery), and — when every
  replica is down — local memory-mapped execution of that shard.  The
  merged results are **bitwise-identical** to the serial in-memory engine
  under any fault schedule, because every path (every worker, and the
  local fallback) scores the same shard bytes with the same kernel and
  the reduce is the engine's deterministic
  :func:`~repro.serving.shards.finalize_screen`.

Wire format (no third-party deps): each frame is a 4-byte big-endian
header length, a JSON header, and the raw C-order bytes of each array the
header declares (name, dtype, shape) — with a CRC32 of the binary section
in the header, so a torn or corrupted frame is *detected* and retried
instead of silently mis-merged.  Nested projection dicts flatten to
``"as_left/g_max"``-style keys.

Launch a worker standalone with::

    PYTHONPATH=src python -m repro.serving.remote /path/to/manifest.json \
        --host 0.0.0.0 --port 7461
"""

from __future__ import annotations

import json
import socket
import socketserver
import struct
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.decoder import kernel_kind, make_kernel
from .executor import exact_score_fn
from .faults import FaultInjected, FaultPolicy, corrupt_payload
from .shards import (finalize_screen, normalize_exclude, normalize_top_k,
                     screen_shard, validate_shard_results)
from .store import ShardStore

_HEADER_STRUCT = struct.Struct("!I")
_MAX_HEADER_BYTES = 64 * 1024 * 1024
PROTOCOL = "repro.serving.remote/v1"


class FrameError(ConnectionError):
    """A wire frame failed structural or CRC validation."""


class RemoteShardError(RuntimeError):
    """A worker answered with an error, or every replica was exhausted."""


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------
def _flatten_arrays(tree: dict, prefix: str = "") -> dict[str, np.ndarray]:
    """Nested array dicts -> flat ``{"as_left/g_max": array}`` mapping."""
    flat: dict[str, np.ndarray] = {}
    for name, value in tree.items():
        key = f"{prefix}{name}"
        if isinstance(value, dict):
            flat.update(_flatten_arrays(value, prefix=f"{key}/"))
        else:
            flat[key] = np.asarray(value)
    return flat


def _unflatten_arrays(flat: dict[str, np.ndarray]) -> dict:
    """Inverse of :func:`_flatten_arrays`."""
    tree: dict = {}
    for key, value in flat.items():
        node = tree
        parts = key.split("/")
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    return tree


def send_message(stream, header: dict,
                 arrays: dict[str, np.ndarray] | None = None,
                 _corrupt: bool = False) -> None:
    """Write one length-prefixed JSON + binary-arrays frame to ``stream``.

    ``_corrupt`` is the fault-injection hook: it flips payload bytes
    *after* the CRC is computed, producing exactly the torn frame a
    receiver must detect.  ``stream`` may be a socket or any object with
    ``sendall``.
    """
    arrays = arrays or {}
    specs = []
    chunks = []
    for name in sorted(arrays):
        array = np.asarray(arrays[name])
        specs.append([name, array.dtype.str, list(array.shape)])
        chunks.append(array.tobytes())
    payload = b"".join(chunks)
    frame_header = dict(header)
    frame_header["protocol"] = PROTOCOL
    frame_header["arrays"] = specs
    frame_header["crc32"] = zlib.crc32(payload) & 0xFFFFFFFF
    encoded = json.dumps(frame_header).encode("utf-8")
    if _corrupt:
        payload = corrupt_payload(payload)
    stream.sendall(_HEADER_STRUCT.pack(len(encoded)) + encoded + payload)


def _recv_exact(stream, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``EOFError`` on a closed peer."""
    parts = []
    remaining = count
    while remaining:
        chunk = stream.recv(min(remaining, 1 << 20))
        if not chunk:
            raise EOFError("connection closed mid-frame"
                           if parts or remaining != count else
                           "connection closed")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def recv_message(stream) -> tuple[dict, dict[str, np.ndarray]]:
    """Read one frame; returns ``(header, arrays)``.

    Raises :class:`FrameError` when the frame is structurally invalid or
    its payload CRC does not match — the caller treats either exactly
    like a dropped connection (retry / failover), never as data.
    """
    (header_len,) = _HEADER_STRUCT.unpack(
        _recv_exact(stream, _HEADER_STRUCT.size))
    if not 0 < header_len <= _MAX_HEADER_BYTES:
        raise FrameError(f"implausible header length {header_len}")
    try:
        header = json.loads(_recv_exact(stream, header_len).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError("frame header is not valid JSON") from error
    if not isinstance(header, dict) or header.get("protocol") != PROTOCOL:
        raise FrameError(f"unexpected protocol "
                         f"{header.get('protocol') if isinstance(header, dict) else header!r}")
    try:
        specs = [(str(name), np.dtype(dtype), tuple(int(d) for d in shape))
                 for name, dtype, shape in header.get("arrays", [])]
        sizes = [dtype.itemsize * int(np.prod(shape, dtype=np.int64))
                 for _, dtype, shape in specs]
    except (TypeError, ValueError) as error:
        raise FrameError("malformed array specs") from error
    payload = _recv_exact(stream, sum(sizes))
    if (zlib.crc32(payload) & 0xFFFFFFFF) != header.get("crc32"):
        raise FrameError("payload CRC32 mismatch — frame corrupt in flight")
    arrays: dict[str, np.ndarray] = {}
    offset = 0
    for (name, dtype, shape), size in zip(specs, sizes):
        arrays[name] = np.frombuffer(
            payload, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)),
            offset=offset).reshape(shape)
        offset += size
    return header, arrays


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------
class _WorkerServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True


class _WorkerHandler(socketserver.StreamRequestHandler):
    """One client connection: frames are handled sequentially until EOF."""

    def handle(self) -> None:
        worker: ShardWorker = self.server.shard_worker  # type: ignore[attr-defined]
        while True:
            try:
                header, arrays = recv_message(self.connection)
            except (EOFError, FrameError, OSError):
                return
            try:
                keep_open = worker.dispatch(self.connection, header, arrays)
            except OSError:
                return
            if not keep_open:
                return


class ShardWorker:
    """Dumb shard-holding TCP server: opens a store, answers screen requests.

    The worker owns no model — only the persisted shard bytes.  Each
    ``screen`` request names a shard, a kernel *kind*, per-query padded-k
    budgets, and carries the precomputed query projections; the worker
    streams that shard's blockwise top-k with the very same
    :func:`~repro.serving.shards.screen_shard` every other execution plan
    runs.  ``health`` and ``manifest`` probes let clients check liveness
    and prove the worker serves the same store (fingerprint + catalog
    digest) before trusting its numbers.

    ``fault_policy`` injects deterministic faults into ``screen``
    handling (delay / drop / error / corrupt) — the test and benchmark
    harness for the failover client.
    """

    def __init__(self, manifest: str | Path | ShardStore,
                 host: str = "127.0.0.1", port: int = 0,
                 fault_policy: FaultPolicy | None = None,
                 mmap_mode: str | None = "r",
                 verify_checksums: bool = True):
        if isinstance(manifest, ShardStore):
            self.store = manifest
        else:
            self.store = ShardStore(manifest, mmap_mode=mmap_mode,
                                    verify_checksums=verify_checksums)
        self.fault_policy = fault_policy
        self._server = _WorkerServer((host, int(port)), _WorkerHandler)
        self._server.shard_worker = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self.requests_served = 0

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> "ShardWorker":
        """Serve in a daemon thread; returns self for chaining."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": 0.05},
                name=f"shard-worker-{self.address[1]}", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve loop (the standalone-process entry point)."""
        self._server.serve_forever(poll_interval=0.05)

    def stop(self) -> None:
        """Stop accepting and close the listening socket (idempotent)."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ShardWorker":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    def _manifest_meta(self) -> dict:
        store = self.store
        fingerprint = store.manifest.get("fingerprint")
        return {"fingerprint": fingerprint,
                "catalog_digest": store.catalog_digest,
                "num_drugs": store.num_drugs,
                "embed_dim": store.embed_dim,
                "num_shards": store.num_shards,
                "block_size": store.block_size,
                "version": store.version,
                "quantization": store.quantization,
                "projections": store.projection_names}

    def dispatch(self, connection, header: dict,
                 arrays: dict[str, np.ndarray]) -> bool:
        """Answer one request frame; returns False to sever the connection."""
        op = header.get("op")
        meta = header.get("meta") or {}
        with self._lock:
            self.requests_served += 1
        try:
            if op == "health":
                send_message(connection, {
                    "status": "ok",
                    "meta": {"num_shards": self.store.num_shards,
                             "num_drugs": self.store.num_drugs,
                             "quarantined": sorted(self.store.quarantined),
                             "requests_served": self.requests_served}})
                return True
            if op == "manifest":
                send_message(connection, {"status": "ok",
                                          "meta": self._manifest_meta()})
                return True
            if op == "reload":
                # A client detected catalog version skew: re-read the
                # manifest from disk (picking up any newer committed
                # version) and report what we now serve.  Living-catalog
                # appends land as new segment files, so existing mmaps
                # stay valid across the reload.
                self.store.reload()
                send_message(connection, {"status": "ok",
                                          "meta": self._manifest_meta()})
                return True
            if op == "screen":
                return self._handle_screen(connection, meta, arrays)
            send_message(connection, {
                "status": "error",
                "meta": {"message": f"unknown op {op!r}"}})
            return True
        except Exception as error:  # noqa: BLE001 — forwarded to the client
            # Any server-side failure (a quarantined shard's
            # ShardIntegrityError included) becomes a structured error
            # reply the client can fail over on — never a hung socket.
            try:
                send_message(connection, {
                    "status": "error",
                    "meta": {"message": f"{type(error).__name__}: {error}"}})
            except OSError:
                return False
            return True

    def _handle_screen(self, connection, meta: dict,
                       arrays: dict[str, np.ndarray]) -> bool:
        shard = int(meta["shard"])
        rule = (self.fault_policy.decide("screen", shard)
                if self.fault_policy is not None else None)
        if rule is not None:
            if rule.action == "delay":
                time.sleep(rule.delay_s)
            elif rule.action == "drop":
                return False  # sever without a reply — a crashed worker
            elif rule.action == "error":
                send_message(connection, {
                    "status": "error",
                    "meta": {"message": "injected worker fault"}})
                return True
        num_queries = int(meta["num_queries"])
        padded = [int(k) for k in meta["padded"]]
        kernel = make_kernel(str(meta["kernel"]))
        query_proj = _unflatten_arrays(arrays)
        score = exact_score_fn(kernel, query_proj, bool(meta["two_sided"]))
        results = screen_shard(self.store.open_shard(shard),
                               int(meta["block_size"]), score,
                               num_queries, padded)
        out = {}
        for qi, (indices, scores) in enumerate(results):
            out[f"idx_{qi}"] = indices
            out[f"sc_{qi}"] = scores
        send_message(connection,
                     {"status": "ok",
                      "meta": {"shard": shard, "num_queries": num_queries}},
                     out, _corrupt=rule is not None
                     and rule.action == "corrupt")
        return True


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------
class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probe recovery.

    Closed: every request passes.  After ``threshold`` *consecutive*
    failures the breaker opens: requests are refused without touching the
    network for ``reset_s`` seconds.  Then it goes half-open: exactly one
    probe request is let through — success closes the breaker, failure
    re-opens it for another full window.  Thread-safe (the executor's
    fan-out threads share per-worker breakers).
    """

    def __init__(self, threshold: int = 3, reset_s: float = 5.0,
                 clock=time.monotonic):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if reset_s < 0:
            raise ValueError("reset_s must be >= 0")
        self.threshold = threshold
        self.reset_s = reset_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._probing:
                return "half-open"
            if self._clock() - self._opened_at >= self.reset_s:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        """May a request go out now?  Claims the half-open probe slot."""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._probing:
                return False  # another thread holds the probe
            if self._clock() - self._opened_at >= self.reset_s:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> bool:
        """Fold in one failure; returns True when this trips the breaker."""
        with self._lock:
            if self._probing:
                # Failed probe: straight back to open, fresh window.
                self._probing = False
                self._opened_at = self._clock()
                self.trips += 1
                return True
            self._failures += 1
            if self._opened_at is None and self._failures >= self.threshold:
                self._opened_at = self._clock()
                self.trips += 1
                return True
            return False


def _parse_address(worker) -> tuple[str, int]:
    """``(host, port)`` from a tuple, a ``"host:port"`` string, or a worker."""
    if isinstance(worker, ShardWorker):
        return worker.address
    if isinstance(worker, str):
        host, _, port = worker.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"worker address {worker!r} is not 'host:port'")
        return host, int(port)
    host, port = worker
    return str(host), int(port)


@dataclass
class _Endpoint:
    """Client-side view of one worker: address + health machinery."""

    address: tuple[str, int]
    breaker: CircuitBreaker
    validated: bool = False    # manifest probe passed
    mismatched: bool = False   # serves a different store — never use


@dataclass(frozen=True)
class _ScreenCall:
    """Everything one screen fans out: shared by every shard task."""

    kernel: object             # the local kernel object (for the fallback)
    kind: str                  # its wire name
    query_proj: dict           # nested projections (fallback scoring)
    flat_proj: dict            # flattened projections (the wire payload)
    num_queries: int
    padded: tuple[int, ...]
    block_size: int
    two_sided: bool


class RemoteShardExecutor:
    """Fault-tolerant fan-out of per-shard top-k over remote shard workers.

    Mirrors :class:`~repro.serving.executor.ParallelShardExecutor`'s
    ``screen`` contract exactly, so the service can route a screen to
    either interchangeably.  Determinism under faults: every replica and
    the local fallback score the same shard bytes with the same kernel,
    responses are CRC-checked and structurally validated before entering
    the merge, and the reduce is the engine's deterministic
    :func:`~repro.serving.shards.finalize_screen` — so the merged top-k
    is bitwise-identical to the serial in-memory engine no matter which
    replicas answered, how many retries it took, or whether any shard
    fell back to local execution.

    Per-shard request routing: attempt ``a`` for shard ``s`` goes to
    worker ``(s + a) % len(workers)`` (skipping workers whose circuit
    breaker is open or whose manifest mismatched), sleeping a bounded,
    deterministically-jittered exponential backoff between attempts.
    When every attempt fails and ``local_fallback`` is on, the shard is
    screened from the locally mapped store.
    """

    def __init__(self, store: ShardStore | str | Path,
                 workers: Sequence, *,
                 timeout_s: float = 10.0,
                 attempts: int = 3,
                 backoff_base_s: float = 0.05,
                 backoff_max_s: float = 1.0,
                 breaker_threshold: int = 3,
                 breaker_reset_s: float = 5.0,
                 local_fallback: bool = True,
                 validate_workers: bool = True,
                 max_threads: int | None = None,
                 fault_policy: FaultPolicy | None = None,
                 seed: int = 0):
        if not isinstance(store, ShardStore):
            store = ShardStore(store)
        addresses = [_parse_address(w) for w in workers]
        if not addresses and not local_fallback:
            raise ValueError("need at least one worker when local_fallback "
                             "is off")
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if backoff_base_s < 0 or backoff_max_s < 0:
            raise ValueError("backoff times must be >= 0")
        self._store = store
        self._endpoints = [
            _Endpoint(address=addr,
                      breaker=CircuitBreaker(threshold=breaker_threshold,
                                             reset_s=breaker_reset_s))
            for addr in addresses]
        self.timeout_s = timeout_s
        self.attempts = attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.local_fallback = local_fallback
        self.validate_workers = validate_workers
        self.fault_policy = fault_policy
        self._seed = int(seed)
        self._max_threads = max_threads
        self._threads: ThreadPoolExecutor | None = None
        self._stats_lock = threading.Lock()
        self.stats: dict[str, int] = {
            "remote_requests": 0, "remote_failures": 0, "retries": 0,
            "failovers": 0, "local_fallbacks": 0, "breaker_trips": 0,
            "breaker_skips": 0, "corrupt_responses": 0,
            "mismatched_workers": 0, "version_skews": 0,
            "worker_reloads": 0}

    # ------------------------------------------------------------------
    @property
    def store(self) -> ShardStore:
        return self._store

    @property
    def workers(self) -> list[tuple[str, int]]:
        return [e.address for e in self._endpoints]

    def breaker_states(self) -> dict[tuple[str, int], str]:
        """Current circuit-breaker state per worker address."""
        return {e.address: ("mismatched" if e.mismatched
                            else e.breaker.state)
                for e in self._endpoints}

    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._stats_lock:
            self.stats[counter] += amount

    def _ensure_threads(self) -> ThreadPoolExecutor:
        if self._threads is None:
            size = self._max_threads or min(self._store.num_shards, 16)
            self._threads = ThreadPoolExecutor(
                max_workers=max(size, 1),
                thread_name_prefix="remote-shard")
        return self._threads

    def close(self) -> None:
        """Release the fan-out threads (idempotent; executor stays usable)."""
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None

    def __enter__(self) -> "RemoteShardExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    def _roundtrip(self, endpoint: _Endpoint, header: dict,
                   arrays: dict[str, np.ndarray] | None = None
                   ) -> tuple[dict, dict[str, np.ndarray]]:
        with socket.create_connection(endpoint.address,
                                      timeout=self.timeout_s) as sock:
            sock.settimeout(self.timeout_s)
            send_message(sock, header, arrays)
            return recv_message(sock)

    def probe_health(self) -> dict[tuple[str, int], dict | None]:
        """``health`` probe of every worker (None = unreachable)."""
        out: dict[tuple[str, int], dict | None] = {}
        for endpoint in self._endpoints:
            try:
                reply, _ = self._roundtrip(endpoint, {"op": "health"})
                out[endpoint.address] = reply.get("meta")
            except (OSError, EOFError, FrameError):
                out[endpoint.address] = None
        return out

    def invalidate_validation(self) -> None:
        """Force every endpoint to re-prove its manifest before reuse.

        Called by the service after a local store mutation (append /
        compaction / rollback): workers still serve the previous
        committed version, which the next validation heals via the
        ``reload`` op instead of excluding them.  Permanently mismatched
        endpoints (foreign stores) stay excluded.
        """
        for endpoint in self._endpoints:
            endpoint.validated = False

    def _meta_matches(self, meta: dict) -> bool:
        local = self._store.manifest
        return (meta.get("fingerprint") == local.get("fingerprint")
                and meta.get("catalog_digest") == local.get("catalog_digest")
                and meta.get("num_drugs") == self._store.num_drugs
                and meta.get("num_shards") == self._store.num_shards
                and meta.get("version", 0) == self._store.version)

    def _validate_endpoint(self, endpoint: _Endpoint) -> None:
        """Prove the worker serves *this* store before trusting its numbers.

        Fingerprint, catalog digest, row count, and committed catalog
        version must all match the local manifest.  Two very different
        mismatches hide behind that check: a worker serving an **older
        committed version of the same store** (the living catalog moved
        under it) is asked to re-open via the ``reload`` op and
        re-checked — a heal, not a failure — while a worker serving a
        **foreign store** (different fingerprint after reload) is
        excluded permanently (a breaker only heals transient faults — a
        wrong catalog never heals).  A same-store worker that is *still*
        skewed after reloading (e.g. replicated files lagging the
        manifest) raises a retryable error so a later attempt can find
        it caught up.  Raises on transport failure so the caller's retry
        path handles it like any other failed attempt.
        """
        reply, _ = self._roundtrip(endpoint, {"op": "manifest"})
        if reply.get("status") != "ok":
            raise RemoteShardError(
                f"worker {endpoint.address}: manifest probe failed: "
                f"{(reply.get('meta') or {}).get('message')}")
        meta = reply.get("meta") or {}
        if not self._meta_matches(meta):
            self._bump("version_skews")
            reply, _ = self._roundtrip(endpoint, {"op": "reload"})
            meta = (reply.get("meta") or {}) \
                if reply.get("status") == "ok" else {}
            if self._meta_matches(meta):
                self._bump("worker_reloads")
            elif (meta.get("fingerprint") == self._store.manifest.get(
                    "fingerprint")
                    and int(meta.get("version") or 0) < self._store.version):
                # Same weights, still *behind* the local committed version
                # after reloading — a replica whose files lag the catalog
                # (e.g. mid-sync).  Transient: a later attempt may find it
                # caught up.
                raise RemoteShardError(
                    f"worker {endpoint.address} is at catalog version "
                    f"{meta.get('version')} (local {self._store.version}) "
                    f"after reload — will retry")
            else:
                # Reload could not heal it and it is not lagging: the
                # worker serves a genuinely different store.  Concurrent
                # shard threads may validate the same endpoint at once;
                # count each mismatched worker exactly once.
                with self._stats_lock:
                    if not endpoint.mismatched:
                        endpoint.mismatched = True
                        self.stats["mismatched_workers"] += 1
                raise RemoteShardError(
                    f"worker {endpoint.address} serves a different store "
                    f"(fingerprint/digest/shape mismatch) — excluded")
        endpoint.validated = True

    # ------------------------------------------------------------------
    # Screening
    # ------------------------------------------------------------------
    def screen(self, kernel, query_proj: dict, num_queries: int,
               top_k: int | Sequence[int],
               block_size: int | None = None,
               exclude: Sequence[np.ndarray] | np.ndarray | None = None,
               two_sided: bool = False
               ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Remote exact-mode screen; bitwise-equal to the serial engine.

        Same contract as :meth:`ParallelShardExecutor.screen`: one
        ``(indices, probabilities)`` pair per query, sorted by
        (probability desc, index asc), exclusions removed.
        """
        block_size = block_size or self._store.block_size
        top_ks = normalize_top_k(top_k, num_queries)
        excludes = normalize_exclude(exclude, num_queries)
        padded = tuple(k + e.size if k > 0 else 0
                       for k, e in zip(top_ks, excludes))
        call = _ScreenCall(
            kernel=kernel, kind=kernel_kind(kernel),
            query_proj=query_proj,
            flat_proj=_flatten_arrays(query_proj),
            num_queries=num_queries, padded=padded,
            block_size=int(block_size), two_sided=bool(two_sided))
        shard_ids = range(self._store.num_shards)
        if self._store.num_shards == 1 or not self._endpoints:
            per_shard = [self._screen_shard(call, sid) for sid in shard_ids]
        else:
            pool = self._ensure_threads()
            per_shard = list(pool.map(
                lambda sid: self._screen_shard(call, sid), shard_ids))
        return finalize_screen(per_shard, list(padded), excludes, top_ks)

    # -- per-shard retry / failover loop --------------------------------
    def _screen_shard(self, call: _ScreenCall, shard: int
                      ) -> list[tuple[np.ndarray, np.ndarray]]:
        last_error: Exception | None = None
        previous_address = None
        for attempt in range(self.attempts):
            endpoint = self._pick_endpoint(shard, attempt)
            if endpoint is None:
                break  # every replica's breaker is open / mismatched
            if attempt:
                self._bump("retries")
                if endpoint.address != previous_address:
                    self._bump("failovers")
                time.sleep(self._backoff_s(shard, attempt - 1))
            previous_address = endpoint.address
            try:
                result = self._request_screen(endpoint, call, shard)
            except FrameError as error:
                self._bump("corrupt_responses")
                last_error = self._record_failure(endpoint, error)
            except (OSError, EOFError, TimeoutError, RemoteShardError,
                    FaultInjected, ValueError) as error:
                last_error = self._record_failure(endpoint, error)
            else:
                endpoint.breaker.record_success()
                return result
        if self.local_fallback:
            self._bump("local_fallbacks")
            return self._screen_local(call, shard)
        raise RemoteShardError(
            f"shard {shard}: every remote attempt failed and local "
            f"fallback is disabled") from last_error

    def _record_failure(self, endpoint: _Endpoint,
                        error: Exception) -> Exception:
        self._bump("remote_failures")
        if not endpoint.mismatched and endpoint.breaker.record_failure():
            self._bump("breaker_trips")
        return error

    def _pick_endpoint(self, shard: int, attempt: int) -> _Endpoint | None:
        """Next replica for ``(shard, attempt)``, honouring breakers."""
        count = len(self._endpoints)
        if not count:
            return None
        for offset in range(count):
            endpoint = self._endpoints[(shard + attempt + offset) % count]
            if endpoint.mismatched:
                continue
            if endpoint.breaker.allow():
                return endpoint
            self._bump("breaker_skips")
        return None

    def _backoff_s(self, shard: int, exponent: int) -> float:
        """Bounded exponential backoff with deterministic jitter.

        Jitter derives from CRC32 of ``(seed, shard, exponent)`` — spread
        like randomness across shards (no thundering herd on a recovering
        worker), yet byte-reproducible run to run, which keeps fault-
        schedule tests deterministic.
        """
        base = min(self.backoff_max_s,
                   self.backoff_base_s * (2.0 ** exponent))
        token = zlib.crc32(
            f"{self._seed}:{shard}:{exponent}".encode()) / 0xFFFFFFFF
        return base * (0.5 + 0.5 * token)

    def _request_screen(self, endpoint: _Endpoint, call: _ScreenCall,
                        shard: int) -> list[tuple[np.ndarray, np.ndarray]]:
        if self.fault_policy is not None:
            rule = self.fault_policy.decide("screen", shard)
            if rule is not None:
                if rule.action == "delay":
                    time.sleep(rule.delay_s)
                elif rule.action == "drop":
                    raise ConnectionResetError(
                        "injected client-side connection drop")
                elif rule.action == "error":
                    raise FaultInjected("injected client-side fault")
                elif rule.action == "corrupt":
                    raise FrameError("injected client-side corrupt frame")
        if self.validate_workers and not endpoint.validated:
            self._validate_endpoint(endpoint)
        self._bump("remote_requests")
        header = {"op": "screen",
                  "meta": {"shard": shard,
                           "block_size": call.block_size,
                           "kernel": call.kind,
                           "two_sided": call.two_sided,
                           "num_queries": call.num_queries,
                           "padded": list(call.padded)}}
        reply, arrays = self._roundtrip(endpoint, header, call.flat_proj)
        if reply.get("status") != "ok":
            raise RemoteShardError(
                f"worker {endpoint.address} failed shard {shard}: "
                f"{(reply.get('meta') or {}).get('message')}")
        try:
            results = [(arrays[f"idx_{qi}"], arrays[f"sc_{qi}"])
                       for qi in range(call.num_queries)]
        except KeyError as error:
            raise RemoteShardError(
                f"worker {endpoint.address} reply is missing arrays "
                f"({error})") from None
        return validate_shard_results(results, call.num_queries,
                                      call.padded,
                                      num_drugs=self._store.num_drugs)

    def _screen_local(self, call: _ScreenCall, shard: int
                      ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Last-resort plan: screen the shard from the locally mapped store.

        Same ``screen_shard`` over the same bytes, so falling back is
        invisible in the results — only in :attr:`stats`.
        """
        score = exact_score_fn(call.kernel, call.query_proj,
                               call.two_sided)
        return screen_shard(self._store.open_shard(shard), call.block_size,
                            score, call.num_queries, call.padded)


# ---------------------------------------------------------------------------
# Standalone worker entry point
# ---------------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Serve a shard store's per-shard screening over TCP.")
    parser.add_argument("manifest",
                        help="shard-store manifest path (or its directory)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 picks an ephemeral port (printed)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip CRC verification of shard files on open")
    args = parser.parse_args(argv)
    worker = ShardWorker(args.manifest, host=args.host, port=args.port,
                         verify_checksums=not args.no_verify)
    host, port = worker.address
    print(f"shard worker serving {args.manifest} on {host}:{port} "
          f"({worker.store.num_shards} shards, "
          f"{worker.store.num_drugs} drugs)", flush=True)
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
