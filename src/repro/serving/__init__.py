"""``repro.serving`` — query-shaped deployment layer for trained HyGNN models.

Turns the repeat-scoring hot path from O(full-graph encode) per call into
O(pairs) over cached drug embeddings, with fingerprint-based invalidation on
weight updates and incremental (cold-start, paper Table IX) registration of
new drugs.  Screening runs on a scale-aware engine: precomputed split-weight
decoder projections, blockwise streaming top-k (O(block + k) peak memory),
sharded catalogs with deterministic merge, query micro-batching, and an
optional prefilter (inner products for the dot decoder, a low-rank sketch
for the MLP decoder) for approximate top-k at very large catalog sizes.
Precision tiers trade exactness for throughput explicitly: float32
serving halves memory bandwidth on the GEMM-bound hot loop, and int8
shard stores (~8x smaller) feed the approximate prefilter while the
shortlist reranks against exact rows.  Under concurrency,
:class:`ScreeningGateway` is the
asyncio front door: it coalesces concurrent requests into dynamic
micro-batches (one engine pass per flush) with admission control,
per-request deadlines, graceful drain, and p50/p99/QPS stats — coalesced
screens stay bitwise-identical to serial calls.

The multi-host tier takes the same engine across machines:
:class:`ShardWorker` serves a shard store's per-shard top-k over a
stdlib TCP transport, :class:`RemoteShardExecutor` fans screens out to
workers with retries, replica failover, per-worker circuit breakers, and
a local memory-mapped fallback — merged results stay bitwise-identical
to the serial engine under any fault schedule
(:class:`~repro.serving.faults.FaultPolicy` drives them
deterministically in tests) — and
:meth:`DDIScreeningService.from_store` cold-boots a full service from a
CRC-verified store plus a serving-context bundle without re-encoding
the corpus.

The catalog is *living*, not frozen: :class:`ShardStore` is a versioned,
crash-consistent, append-only store — every mutation (append, compaction,
rollback) stages new segment files through a write-ahead intent journal
and commits with one atomic manifest replace, so a writer killed at any
point (driven exhaustively by :class:`~repro.serving.faults.CrashPolicy`
crash points) recovers to a committed version, never a torn hybrid.
``DDIScreeningService.register_drugs`` appends through to the attached
store instead of detaching it, ``rollback_catalog`` restores any retained
version bitwise, and remote workers heal catalog version skew by
re-opening instead of being excluded.
"""

from .cache import (FINGERPRINT_MODES, EmbeddingCache, LatencyWindow,
                    ServiceStats, weights_fingerprint)
from .executor import ParallelShardExecutor, exact_score_fn
from .faults import (FAULT_ACTIONS, CrashPoint, CrashPolicy, FaultInjected,
                     FaultPolicy, FaultRule, corrupt_payload)
from .gateway import (DeadlineExceeded, GatewayClosed, GatewayOverloaded,
                      ScreeningGateway)
from .precision import (QUANTIZATION_SCHEMES, SERVING_PRECISIONS,
                        dequantize_int8, max_abs_error, quantize_int8,
                        rank_agreement, recall_at_k, resolve_precision)
from .remote import (CircuitBreaker, FrameError, RemoteShardError,
                     RemoteShardExecutor, ShardWorker, recv_message,
                     send_message)
from .service import DDIScreeningService, ScreenHit
from .shards import CatalogShard, ShardedEmbeddingCatalog
from .store import MappedShardCatalog, ShardIntegrityError, ShardStore
from .topk import TopKAccumulator, merge_top_k, top_k_desc

__all__ = [
    "DDIScreeningService", "ScreenHit",
    "ScreeningGateway", "GatewayClosed", "GatewayOverloaded",
    "DeadlineExceeded",
    "EmbeddingCache", "ServiceStats", "LatencyWindow",
    "weights_fingerprint", "FINGERPRINT_MODES",
    "ShardedEmbeddingCatalog", "CatalogShard",
    "ShardStore", "MappedShardCatalog", "ShardIntegrityError",
    "ParallelShardExecutor", "exact_score_fn",
    "ShardWorker", "RemoteShardExecutor", "CircuitBreaker",
    "RemoteShardError", "FrameError", "send_message", "recv_message",
    "FaultPolicy", "FaultRule", "FaultInjected", "FAULT_ACTIONS",
    "corrupt_payload", "CrashPoint", "CrashPolicy",
    "TopKAccumulator", "merge_top_k", "top_k_desc",
    "SERVING_PRECISIONS", "QUANTIZATION_SCHEMES", "resolve_precision",
    "quantize_int8", "dequantize_int8",
    "rank_agreement", "recall_at_k", "max_abs_error",
]
