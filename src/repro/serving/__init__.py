"""``repro.serving`` — query-shaped deployment layer for trained HyGNN models.

Turns the repeat-scoring hot path from O(full-graph encode) per call into
O(pairs) over cached drug embeddings, with fingerprint-based invalidation on
weight updates and incremental (cold-start, paper Table IX) registration of
new drugs.
"""

from .cache import (FINGERPRINT_MODES, EmbeddingCache, ServiceStats,
                    weights_fingerprint)
from .service import DDIScreeningService, ScreenHit

__all__ = [
    "DDIScreeningService", "ScreenHit",
    "EmbeddingCache", "ServiceStats", "weights_fingerprint",
    "FINGERPRINT_MODES",
]
