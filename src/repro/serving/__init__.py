"""``repro.serving`` — query-shaped deployment layer for trained HyGNN models.

Turns the repeat-scoring hot path from O(full-graph encode) per call into
O(pairs) over cached drug embeddings, with fingerprint-based invalidation on
weight updates and incremental (cold-start, paper Table IX) registration of
new drugs.  Screening runs on a scale-aware engine: precomputed split-weight
decoder projections, blockwise streaming top-k (O(block + k) peak memory),
sharded catalogs with deterministic merge, query micro-batching, and an
optional inner-product prefilter for approximate top-k at very large
catalog sizes.
"""

from .cache import (FINGERPRINT_MODES, EmbeddingCache, ServiceStats,
                    weights_fingerprint)
from .executor import ParallelShardExecutor, exact_score_fn
from .service import DDIScreeningService, ScreenHit
from .shards import CatalogShard, ShardedEmbeddingCatalog
from .store import MappedShardCatalog, ShardStore
from .topk import TopKAccumulator, merge_top_k, top_k_desc

__all__ = [
    "DDIScreeningService", "ScreenHit",
    "EmbeddingCache", "ServiceStats", "weights_fingerprint",
    "FINGERPRINT_MODES",
    "ShardedEmbeddingCatalog", "CatalogShard",
    "ShardStore", "MappedShardCatalog",
    "ParallelShardExecutor", "exact_score_fn",
    "TopKAccumulator", "merge_top_k", "top_k_desc",
]
