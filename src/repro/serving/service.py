"""Batched DDI screening service over cached drug embeddings.

``HyGNN.predict_proba`` re-encodes the *entire* corpus hypergraph for every
call — fine for training loops, wasteful for serving, where the catalog is
fixed and only the query pairs change.  :class:`DDIScreeningService` exploits
the encoder's inductive split (:meth:`HyGNNEncoder.encode_with_context` /
:meth:`~repro.core.encoder.HyGNNEncoder.encode_edges_subset`):

1. Drug embeddings are computed **once** per (model weights, catalog) version
   and cached; every scoring call after that is a vectorized decoder pass,
   O(pairs) instead of O(full-graph encode).  Cached scores are
   bitwise-identical to ``model.predict_proba`` on the catalog hypergraph.
2. Weight updates are detected by fingerprint (see
   :mod:`repro.serving.cache`) and invalidate the cache automatically;
   :meth:`DDIScreeningService.invalidate` is the explicit override.
3. New drugs register incrementally: their SMILES is tokenized against the
   *fitted* vocabulary and encoded against the frozen corpus context — the
   paper's cold-start semantics (Table IX) — without re-encoding a single
   existing catalog drug.
4. ``screen`` answers top-k "drug X against the whole catalog" queries.

Build one with a live model (:meth:`DDIScreeningService.__init__`) or
straight from a ``serialize.save_model`` artifact
(:meth:`DDIScreeningService.from_artifact`) for a train → save → serve path.
"""

from __future__ import annotations

import hashlib
import io
import json
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.decoder import make_screen_kernel
from ..core.encoder import EncoderContext
from ..core.model import HyGNN
from ..core.serialize import load_model, save_model
from ..hypergraph import DrugHypergraphBuilder, Hypergraph
from ..nn import Tensor
from ..nn.functional import stable_sigmoid
from .cache import EmbeddingCache, ServiceStats, weights_fingerprint
from .executor import ParallelShardExecutor, exact_score_fn
from .precision import dequantize_int8, resolve_precision
from .remote import RemoteShardExecutor
from .shards import ShardedEmbeddingCatalog, normalize_top_k
from .store import ShardStore


@dataclass(frozen=True)
class ScreenHit:
    """One ranked candidate from a top-k screening query."""

    index: int
    drug_id: str
    probability: float


def _slice_query(query_proj: dict, qi: int) -> dict:
    """One query's single-row slice of a (possibly nested) projections dict.

    The dot decoder's query projections are flat arrays; the MLP decoder
    nests per-side operand dicts (``{"as_left": {"const", "g_max", ...}}``)
    under the side names, with flat extras (the ``"sketch"`` operand)
    alongside.  Both shapes slice to a one-query view here.
    """
    sliced = {}
    for name, value in query_proj.items():
        if isinstance(value, dict):
            sliced[name] = {k: v[qi:qi + 1] for k, v in value.items()}
        else:
            sliced[name] = value[qi:qi + 1]
    return sliced


class DDIScreeningService:
    """Embed-once / score-many serving layer for a trained HyGNN model.

    ``block_size`` and ``num_shards`` shape the screening engine: candidates
    are scored in ``block_size``-row blocks with streaming top-k selection
    (peak scoring memory O(block + k), never O(catalog)), partitioned into
    ``num_shards`` shards with per-shard top-k and a deterministic merge.
    Exact-mode screening scores are bitwise-identical for every choice of
    both knobs.

    Two out-of-core/parallel extensions ride on that layout, both exactly
    as deterministic: :meth:`save_shards` persists the shards (embedding
    rows + precomputed projections) as raw ``.npy`` files plus a JSON
    manifest, and :meth:`open_shards` reattaches them memory-mapped, so
    screening streams candidate blocks from disk instead of holding the
    catalog-sized working set in RAM; with ``num_workers > 1`` exact-mode
    screens additionally fan per-shard top-k out to a process pool whose
    workers open shards by manifest path.  All plans — serial in-memory,
    serial memory-mapped, multi-process — return bitwise-identical
    ``(indices, probabilities)``.
    """

    def __init__(self, model: HyGNN, builder: DrugHypergraphBuilder,
                 catalog_smiles: list[str],
                 drug_ids: list[str] | None = None,
                 auto_refresh: bool = True,
                 fingerprint_mode: str = "fast",
                 block_size: int = 1024,
                 num_shards: int = 1,
                 num_workers: int = 0,
                 precision: str = "float64",
                 sketch_rank: int | None = None):
        if not catalog_smiles:
            raise ValueError("catalog must contain at least one drug")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        vocab = builder.vocabulary  # raises if the builder is unfitted
        if len(vocab) != model.encoder.num_substructures:
            raise ValueError(
                f"builder vocabulary ({len(vocab)}) does not match the "
                f"model ({model.encoder.num_substructures} substructures)")
        if drug_ids is None:
            drug_ids = [f"drug_{i}" for i in range(len(catalog_smiles))]
        if len(drug_ids) != len(catalog_smiles):
            raise ValueError("drug_ids length mismatch")
        if len(set(drug_ids)) != len(drug_ids):
            raise ValueError("drug ids must be unique")

        self._model = model
        self._builder = builder
        self._vocab = vocab
        self._auto_refresh = auto_refresh
        self._fingerprint_mode = fingerprint_mode
        # Serving precision: "float32" downcasts embeddings, decoder
        # weights, and candidate projections once at cache-build time and
        # runs the whole blockwise screen in float32 (half the memory
        # bandwidth on the GEMM-bound hot loop).  float64 (default) stays
        # bitwise-identical to the training-path scores.  The precision is
        # folded into the weights fingerprint, so float32 caches/stores
        # can never masquerade as exact-tier artifacts (or vice versa).
        self._dtype = resolve_precision(precision)
        # Rank of the MLP prefilter sketch (None = decoder default).
        self._sketch_rank = sketch_rank
        self._smiles: list[str] = list(catalog_smiles)
        self._drug_ids: list[str] = list(drug_ids)
        self._index: dict[str, int] = {d: i for i, d in enumerate(drug_ids)}
        # The corpus hypergraph is the frozen context every embedding — and
        # every future registration — is computed against.
        self._corpus: Hypergraph = builder.transform(catalog_smiles)
        self._num_corpus = self._corpus.num_edges
        # Incidence node ids of incrementally registered drugs, in
        # registration order (needed to re-encode them after invalidation).
        self._extension_nodes: list[np.ndarray] = []
        self._cache = EmbeddingCache()
        self.block_size = block_size
        self.num_shards = num_shards
        # Pool size for parallel shard execution (0/1 = in-process); only
        # takes effect while a shard store is attached (see open_shards).
        self.num_workers = num_workers
        # Sharded catalog derived from the cache; rebuilt when the cache
        # version (or either knob) changes.  Versions are globally unique
        # (never reused across cache instances), so the key alone decides
        # staleness — including after load_cache swaps the cache object.
        self._catalog_engine: ShardedEmbeddingCatalog | None = None
        self._catalog_key: tuple | None = None
        # Out-of-core tier: an attached memory-mapped shard store, the
        # cache version its arrays were validated against, and the lazy
        # process-pool executor over it.
        self._store: ShardStore | None = None
        self._store_version: int | None = None
        self._executor: ParallelShardExecutor | None = None
        # Multi-host tier: a fault-tolerant client over remote shard
        # workers (see connect_workers); tied to the attached store's
        # lifetime exactly like the process-pool executor.
        self._remote: RemoteShardExecutor | None = None
        # Picklable weight-free screening kernel (scores from projections
        # only); shared by the serial engine and pool workers.
        self._screen_kernel = None
        # Sorted drug-id table for vectorized id -> index lookups; rebuilt
        # lazily after registrations.
        self._id_table: tuple[np.ndarray, np.ndarray] | None = None
        # The model's parameter set is fixed after construction; cache the
        # sorted walk so per-query staleness checks only pay the checksums.
        self._param_list: list | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(cls, path: str | Path, catalog_smiles: list[str],
                      drug_ids: list[str] | None = None,
                      **kwargs) -> "DDIScreeningService":
        """Load a ``serialize.save_model`` archive and serve it."""
        model, builder = load_model(path)
        return cls(model, builder, catalog_smiles, drug_ids=drug_ids,
                   **kwargs)

    # ------------------------------------------------------------------
    # Cold boot: manifest + serving context, no corpus encode
    # ------------------------------------------------------------------
    def save_serving_context(self, path: str | Path) -> Path:
        """Persist everything :meth:`from_store` needs to cold-boot.

        One ``.npz`` bundling the model + vocabulary archive
        (``serialize.save_model``, embedded as bytes), the frozen encoder
        context, the full drug list (registered extensions included, with
        their incidence node ids), and the serving configuration.
        Together with a :meth:`save_shards` manifest this is a complete
        serving state: a fresh process can screen bitwise-identically to
        this one without ever re-encoding the corpus.
        """
        self._ensure_fresh()
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        buffer = io.BytesIO()
        save_model(buffer, self._model, self._builder)
        meta = {"smiles": self._smiles,
                "drug_ids": self._drug_ids,
                "num_corpus": int(self._num_corpus),
                "precision": self._dtype.name,
                "fingerprint_mode": self._fingerprint_mode,
                "block_size": int(self.block_size),
                "num_shards": int(self.num_shards),
                "sketch_rank": self._sketch_rank}
        arrays = {
            "meta_json": np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8),
            "model_archive": np.frombuffer(buffer.getvalue(),
                                           dtype=np.uint8),
            "num_context_layers": np.asarray(
                self._cache.context.num_layers),
            "num_extension": np.asarray(len(self._extension_nodes)),
        }
        for index, layer in enumerate(self._cache.context.layer_node_feats):
            arrays[f"context_layer_{index}"] = layer.data
        for index, nodes in enumerate(self._extension_nodes):
            arrays[f"extension_nodes_{index}"] = nodes
        np.savez_compressed(path, **arrays)
        return path

    @classmethod
    def from_store(cls, manifest: str | Path, context: str | Path,
                   workers: list | None = None,
                   **kwargs) -> "DDIScreeningService":
        """Cold-boot a service from a shard store + serving context.

        ``manifest`` is a :meth:`save_shards` store (exact tier — a
        quantized store cannot cold-boot: its int8 pages are not the
        embedding rows), ``context`` a :meth:`save_serving_context`
        bundle.  The catalog embeddings are *gathered from the shard
        files* and adopted into the cache, so the corpus hypergraph is
        never re-encoded (``stats.corpus_encodes`` stays 0); the store is
        then attached strictly (fingerprint + catalog digest + shard
        CRC checks all enforced), so a torn or mismatched store fails the
        boot instead of serving wrong numbers.  Screening afterwards is
        bitwise-identical to the warm service that wrote the artifacts.

        ``workers`` (addresses for :meth:`connect_workers`) wires the
        multi-host tier in the same call; other ``kwargs`` go to the
        constructor (e.g. ``num_workers``, ``auto_refresh``).
        """
        context_path = Path(context)
        with np.load(context_path, allow_pickle=False) as archive:
            meta = json.loads(bytes(archive["meta_json"]).decode("utf-8"))
            model, builder = load_model(
                io.BytesIO(bytes(archive["model_archive"])))
            num_layers = int(archive["num_context_layers"])
            encoder_context = EncoderContext(layer_node_feats=tuple(
                Tensor(archive[f"context_layer_{index}"])
                for index in range(num_layers)))
            extension_nodes = [
                np.asarray(archive[f"extension_nodes_{index}"],
                           dtype=np.int64)
                for index in range(int(archive["num_extension"]))]
        smiles = [str(s) for s in meta["smiles"]]
        drug_ids = [str(d) for d in meta["drug_ids"]]
        num_corpus = int(meta["num_corpus"])
        if not 1 <= num_corpus <= len(smiles) or \
                len(smiles) - num_corpus != len(extension_nodes):
            raise ValueError("serving context is inconsistent: corpus/"
                             "extension bookkeeping does not add up")
        service = cls(model, builder, smiles[:num_corpus],
                      drug_ids=drug_ids[:num_corpus],
                      precision=meta["precision"],
                      fingerprint_mode=meta["fingerprint_mode"],
                      block_size=int(meta["block_size"]),
                      num_shards=int(meta["num_shards"]),
                      sketch_rank=meta.get("sketch_rank"),
                      **kwargs)
        # Registered extensions restore as bookkeeping only — their
        # embedding rows come from the store like everyone else's.
        service._smiles = smiles
        service._drug_ids = drug_ids
        service._index = {d: i for i, d in enumerate(drug_ids)}
        service._extension_nodes = extension_nodes

        # The cold-booting process owns the store directory: recover from
        # any torn state (journal roll-forward/back, orphan quarantine)
        # before trusting the manifest.
        store = ShardStore(manifest, recover=True)
        if store.is_quantized:
            raise ValueError(
                "cold boot needs an exact (non-quantized) shard store; "
                "int8 pages are not the embedding rows")
        if store.num_drugs != service.num_drugs:
            raise ValueError(
                f"shard store covers {store.num_drugs} drugs; the serving "
                f"context lists {service.num_drugs}")
        fingerprint = service._fingerprint()
        if store.fingerprint != fingerprint:
            raise ValueError(
                "shard store fingerprint does not match the model in the "
                "serving context")
        # Gathering materialises the rows in RAM (the cache needs them for
        # pair scoring and registrations) — shard CRCs are verified by
        # open_shard on the way.
        embeddings = np.concatenate(
            [np.asarray(store.open_shard(index).embeddings)
             for index in range(store.num_shards)],
            axis=0).astype(service._dtype, copy=False)
        service._cache.adopt(fingerprint, encoder_context, embeddings)
        service.open_shards(store.path, strict=True)
        if workers:
            service.connect_workers(workers)
        return service

    # ------------------------------------------------------------------
    # Catalog introspection
    # ------------------------------------------------------------------
    @property
    def num_drugs(self) -> int:
        return len(self._smiles)

    @property
    def drug_ids(self) -> list[str]:
        return list(self._drug_ids)

    @property
    def stats(self) -> ServiceStats:
        return self._cache.stats

    @property
    def embeddings(self) -> np.ndarray:
        """Read-only view of the cached catalog embeddings."""
        self._ensure_fresh()
        view = self._cache.embeddings.view()
        view.flags.writeable = False
        return view

    def index_of(self, drug_id: str) -> int:
        try:
            return self._index[drug_id]
        except KeyError:
            raise KeyError(f"unknown drug id {drug_id!r}") from None

    # ------------------------------------------------------------------
    # Cache lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Explicitly drop the cache; next query re-encodes the catalog."""
        self._cache.drop()

    def refresh(self, force: bool = False) -> None:
        """Rebuild the cache now (``force=True`` skips the staleness check)."""
        if force:
            self._cache.drop()
        self._ensure_fresh(check=True)

    def _catalog_digest(self, upto: int | None = None) -> str:
        """Content hash of the catalog the embedding rows belong to.

        ``upto`` hashes only the first ``upto`` drugs — the catalog is
        append-only, so a retained store version's digest is always the
        digest of some prefix (how :meth:`rollback_catalog` verifies a
        target version really is this catalog's past).
        """
        digest = hashlib.blake2b(digest_size=16)
        for smiles, drug_id in zip(self._smiles[:upto], self._drug_ids[:upto]):
            digest.update(smiles.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(drug_id.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def save_cache(self, path: str | Path) -> Path:
        """Persist the embedding cache (encoding first if it is cold).

        The snapshot carries the weight fingerprint and a digest of the
        catalog contents, so a later :meth:`load_cache` can verify it still
        matches both the model and the drugs being served.
        """
        self._ensure_fresh()
        return self._cache.save(path, catalog_digest=self._catalog_digest())

    def load_cache(self, path: str | Path, strict: bool = False) -> bool:
        """Warm-start from a :meth:`save_cache` snapshot; True on success.

        The snapshot is installed only if it exists, reads cleanly, its
        fingerprint matches the *current* model weights (same fingerprint
        mode included), and its catalog digest matches this service's exact
        drug list — otherwise it is ignored (or, with ``strict=True``, the
        error is raised) and the next query re-encodes as usual.  On
        success the initial corpus encode is skipped entirely.
        """
        try:
            loaded = EmbeddingCache.load(path)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # Missing on first boot, truncated write, foreign file format —
            # all mean "no usable snapshot", which is not an error here.
            if strict:
                raise
            return False
        fingerprint = self._fingerprint()
        if not loaded.matches(fingerprint):
            if strict:
                raise ValueError(
                    "persisted cache fingerprint does not match the current "
                    "model weights")
            return False
        if loaded.catalog_digest != self._catalog_digest():
            if strict:
                raise ValueError(
                    "persisted cache was saved for a different drug catalog")
            return False
        if (loaded.embeddings.shape[0] != self.num_drugs
                or loaded.context.num_layers != len(self._model.encoder.layers)):
            if strict:
                raise ValueError(
                    f"persisted cache covers {loaded.embeddings.shape[0]} "
                    f"drugs / {loaded.context.num_layers} context layers; "
                    f"this service has {self.num_drugs} drugs / "
                    f"{len(self._model.encoder.layers)} layers")
            return False
        loaded.stats = self._cache.stats
        self._cache = loaded
        # No explicit engine invalidation needed: cache versions are
        # globally unique, so the memoized catalog's key can never match
        # the freshly loaded cache and the next query rebuilds.
        self._cache.stats.cache_loads += 1
        if self._cache.shard_manifest:
            # The snapshot was saved with an out-of-core shard store next
            # to it; reattach best-effort (validated against the current
            # weights and catalog like any open_shards call).
            self.open_shards(self._cache.shard_manifest)
        return True

    # ------------------------------------------------------------------
    # Out-of-core shard store + parallel execution
    # ------------------------------------------------------------------
    def save_shards(self, path: str | Path, num_shards: int | None = None,
                    block_size: int | None = None,
                    quantize: str | None = None) -> Path:
        """Persist the sharded catalog as an out-of-core store; see
        :class:`~repro.serving.store.ShardStore`.

        Writes each shard's embedding rows and precomputed candidate
        projections as raw ``.npy`` files under directory ``path``, plus a
        JSON manifest carrying the weight fingerprint and catalog digest.
        Returns the manifest path (pass it — or the directory — to
        :meth:`open_shards`, possibly from a different process or host).
        The manifest location is remembered on the cache, so a subsequent
        :meth:`save_cache`/:meth:`load_cache` round-trip reattaches the
        store automatically.

        ``quantize="int8"`` writes symmetric per-column-scaled int8 shards
        (~8x smaller store; scales ride the manifest).  A quantized store
        serves the *approximate* tier only: the mmap prefilter streams
        int8 pages and the shortlist reranks against exact in-memory rows;
        exact-mode screens fall back to the in-memory engine.  When the
        decoder prefilters through a sketch (MLP), the sketch rows and
        factors are materialised and stored too, so the store is
        approx-ready on a cold open.
        """
        self._ensure_fresh()
        decoder = self._model.decoder
        projections = self._cache.ensure_projections(decoder)
        if getattr(decoder, "needs_sketch", False):
            self._cache.ensure_sketch(decoder, rank=self._sketch_rank)
            projections = self._cache.projections
        manifest = ShardStore.save(
            path, self._cache.embeddings, projections,
            num_shards=num_shards or self.num_shards,
            block_size=block_size or self.block_size,
            fingerprint=self._fingerprint(),
            catalog_digest=self._catalog_digest(),
            quantize=quantize,
            sketch_factors=self._cache.sketch_factors)
        self._cache.shard_manifest = str(manifest)
        return manifest

    def open_shards(self, path: str | Path,
                    num_workers: int | None = None,
                    strict: bool = False,
                    mmap_mode: str | None = "r") -> bool:
        """Attach a :meth:`save_shards` store memory-mapped; True on success.

        The store is attached only if its manifest reads cleanly, its
        fingerprint matches the *current* model weights, and its catalog
        digest matches this service's exact drug list — otherwise it is
        ignored (or, with ``strict=True``, the error is raised).  While
        attached, exact-mode screening streams candidate blocks from the
        mapped files (O(block + k) heap) instead of in-memory arrays, and
        — when ``num_workers`` (here or on the constructor) is > 1 — fans
        per-shard top-k out to a process pool.  Results stay bitwise-
        identical to the in-memory engine.  A weight update detaches the
        store on the next query (the disk arrays no longer describe the
        cache) and screening falls back in-memory; drug registrations are
        *appended through* to an attached exact store instead (see
        :meth:`register_drugs`).

        The attaching process owns the store: any torn state a crashed
        writer left behind (intent journal, partial segment files) is
        recovered to the last committed version before validation — see
        :meth:`ShardStore.recover_dir`; the report is on
        ``service.shard_store.recovered``.
        """
        try:
            store = ShardStore(path, mmap_mode=mmap_mode, recover=True)
        except (OSError, ValueError, KeyError):
            if strict:
                raise
            return False
        self._ensure_fresh()
        if store.fingerprint != self._fingerprint():
            if strict:
                raise ValueError("shard store fingerprint does not match "
                                 "the current model weights")
            return False
        if store.catalog_digest != self._catalog_digest():
            if strict:
                raise ValueError("shard store was saved for a different "
                                 "drug catalog")
            return False
        if store.num_drugs != self.num_drugs:
            if strict:
                raise ValueError(
                    f"shard store covers {store.num_drugs} drugs; this "
                    f"service has {self.num_drugs}")
            return False
        self._detach_store()
        self._store = store
        self._store_version = self._cache.version
        if not store.is_quantized:
            # The store now serves the candidate side, so the in-memory copy
            # of the dominant working set — the precomputed projections, ~4x
            # the embedding matrix for the MLP decoder — is redundant:
            # release it.  (Assigned directly, NOT via a version bump: the
            # cache content the store was validated against is unchanged.
            # If the store detaches later, ensure_projections recomputes
            # lazily.)  The embeddings and encoder context stay resident —
            # queries and registrations need them — so the service's floor
            # is O(N·d), not O(N·d·5).
            # A *quantized* store keeps them instead: its int8 pages only
            # serve the approximate prefilter, and both the shortlist
            # rerank and exact-mode fallback need the exact rows (dropping
            # them would force a version-bumping recompute that detaches
            # the store).
            self._cache.projections = None
        if num_workers is not None:
            if num_workers < 0:
                raise ValueError("num_workers must be >= 0")
            self.num_workers = num_workers
        self._cache.shard_manifest = str(store.path)
        return True

    def _detach_store(self) -> None:
        self._store = None
        self._store_version = None
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        if self._remote is not None:
            # Remote workers serve the detached store's shards — their
            # answers no longer describe the cache.
            self._remote.close()
            self._remote = None
        self._catalog_engine = None
        self._catalog_key = None

    def _sync_store(self) -> None:
        """Drop the attached store if the cache has moved past it."""
        if (self._store is not None
                and self._store_version != self._cache.version):
            self._detach_store()

    def _get_executor(self) -> ParallelShardExecutor:
        if self._executor is None:
            self._executor = ParallelShardExecutor(
                self._store, num_workers=self.num_workers)
        return self._executor

    # ------------------------------------------------------------------
    # Multi-host tier
    # ------------------------------------------------------------------
    def connect_workers(self, workers: list,
                        **kwargs) -> RemoteShardExecutor:
        """Route exact-mode screens to remote shard workers.

        ``workers`` are addresses (``(host, port)`` tuples,
        ``"host:port"`` strings, or in-process
        :class:`~repro.serving.remote.ShardWorker` objects) serving the
        *attached* shard store's manifest; ``kwargs`` configure the
        :class:`~repro.serving.remote.RemoteShardExecutor` (timeouts,
        retry budget, circuit breakers, local fallback).  Requires an
        attached exact store — the local mmap copy is the failover of
        last resort, and the store's manifest is what worker manifests
        are validated against.  Screens stay bitwise-identical to the
        in-process plans under any fault schedule.
        """
        self._sync_store()
        if self._store is None:
            raise RuntimeError(
                "connect_workers needs an attached shard store "
                "(save_shards + open_shards first)")
        if self._store.is_quantized:
            raise ValueError("remote screening serves the exact tier; "
                             "a quantized store is approximate-only")
        if self._remote is not None:
            self._remote.close()
        self._remote = RemoteShardExecutor(self._store, workers, **kwargs)
        return self._remote

    def disconnect_workers(self) -> None:
        """Drop the remote tier; screens run in-process again."""
        if self._remote is not None:
            self._remote.close()
            self._remote = None

    @property
    def remote(self) -> RemoteShardExecutor | None:
        """The connected remote executor, if any (stats live on it)."""
        return self._remote

    def close(self) -> None:
        """Release the worker pool and remote tier; the service stays
        usable."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        self.disconnect_workers()

    def __enter__(self) -> "DDIScreeningService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    @property
    def precision(self) -> str:
        """The serving dtype of the screening tier ("float64"/"float32")."""
        return self._dtype.name

    def _fingerprint(self) -> tuple:
        if self._param_list is None:
            self._param_list = sorted(self._model.named_parameters())
        fingerprint = weights_fingerprint(
            self._model, mode=self._fingerprint_mode,
            params=self._param_list)
        if self._dtype != np.float64:
            # Non-default precisions wrap the weight fingerprint, so a
            # low-precision cache/store and an exact one can never validate
            # against each other; float64 fingerprints stay byte-compatible
            # with snapshots written before precision tiers existed.
            fingerprint = ("precision", self._dtype.name, fingerprint)
        return fingerprint

    def _ensure_fresh(self, check: bool | None = None) -> None:
        if check is None:
            check = self._auto_refresh
        if self._cache.valid and not check:
            self._cache.stats.cache_hits += 1
            return
        fingerprint = self._fingerprint()
        if self._cache.matches(fingerprint):
            self._cache.stats.cache_hits += 1
            return
        self._cache.drop()
        self._rebuild(fingerprint)

    def _rebuild(self, fingerprint: tuple) -> None:
        model = self._model
        was_training = model.training
        model.eval()
        try:
            corpus_emb, context = model.encoder.encode_with_context(
                self._corpus.node_ids, self._corpus.edge_ids,
                self._corpus.num_edges,
                partitions=(self._corpus.node_partition,
                            self._corpus.edge_partition))
            rows = [corpus_emb.numpy()]
            if self._extension_nodes:
                node_ids = np.concatenate(self._extension_nodes)
                edge_ids = np.repeat(
                    np.arange(len(self._extension_nodes), dtype=np.int64),
                    [len(n) for n in self._extension_nodes])
                ext = model.encoder.encode_edges_subset(
                    context, node_ids, edge_ids, len(self._extension_nodes))
                rows.append(ext.numpy())
            # Detach the context: serving never backprops, and a live context
            # would pin the whole corpus-encode autograd graph in the cache.
            detached = EncoderContext(layer_node_feats=tuple(
                Tensor(t.data) for t in context.layer_node_feats))
            # The encode always runs float64 (training parity); the serving
            # tier downcasts once here — a no-op at the default precision.
            embeddings = np.concatenate(rows, axis=0).astype(self._dtype,
                                                             copy=False)
            self._cache.install(
                fingerprint, detached, embeddings,
                projections=model.candidate_projections(embeddings))
        finally:
            model.train(was_training)

    # ------------------------------------------------------------------
    # Incremental registration
    # ------------------------------------------------------------------
    def _tokenize_batch(self, smiles_list: list[str],
                        allow_unknown: bool) -> list[np.ndarray]:
        token_sets = self._builder.drug_token_sets(smiles_list)
        node_lists = []
        for smiles, tokens in zip(smiles_list, token_sets):
            if not tokens and not allow_unknown:
                raise ValueError(
                    f"no known substructures in {smiles!r}; its embedding "
                    f"would be all-zero (pass allow_unknown=True to register "
                    f"anyway)")
            node_lists.append(np.array(
                sorted(self._vocab[t] for t in tokens), dtype=np.int64))
        return node_lists

    def _tokenize(self, smiles: str, allow_unknown: bool) -> np.ndarray:
        return self._tokenize_batch([smiles], allow_unknown)[0]

    def register_drug(self, smiles: str, drug_id: str | None = None,
                      allow_unknown: bool = False) -> int:
        """Add one new drug to the catalog; O(its substructures), not O(catalog).

        The drug is tokenized against the fitted vocabulary and embedded
        against the frozen corpus context — existing catalog embeddings are
        neither recomputed nor touched.  Returns the new catalog index.
        """
        return self.register_drugs([smiles],
                                   None if drug_id is None else [drug_id],
                                   allow_unknown=allow_unknown)[0]

    def register_drugs(self, smiles_list: list[str],
                       drug_ids: list[str] | None = None,
                       allow_unknown: bool = False) -> list[int]:
        """Batch registration; identical embeddings to one-at-a-time calls.

        With an exact shard store attached, the new rows are *appended
        through* to it as a crash-safe segment (a new committed catalog
        version) instead of detaching it — the out-of-core / parallel /
        remote tiers keep serving across registrations.  A quantized
        store cannot absorb exact rows and is detached as before.
        """
        start = time.perf_counter()
        if drug_ids is None:
            drug_ids = [f"drug_{len(self._smiles) + i}"
                        for i in range(len(smiles_list))]
        if len(drug_ids) != len(smiles_list):
            raise ValueError("drug_ids length mismatch")
        clashes = [d for d in drug_ids if d in self._index]
        if clashes or len(set(drug_ids)) != len(drug_ids):
            raise ValueError(f"duplicate drug ids: {clashes or drug_ids}")
        node_lists = self._tokenize_batch(smiles_list, allow_unknown)

        self._ensure_fresh()
        node_ids = (np.concatenate(node_lists) if node_lists
                    else np.zeros(0, dtype=np.int64))
        edge_ids = np.repeat(np.arange(len(node_lists), dtype=np.int64),
                             [len(n) for n in node_lists])
        model = self._model
        was_training = model.training
        model.eval()
        try:
            rows = model.encoder.encode_edges_subset(
                self._cache.context, node_ids, edge_ids,
                len(node_lists)).numpy()
        finally:
            model.train(was_training)
        rows = rows.astype(self._dtype, copy=False)
        projections = model.candidate_projections(rows)
        cached = self._cache.projections
        if (cached is not None and "sketch" in cached
                and self._cache.sketch_factors is not None):
            # Sketch the new rows with the *existing* factors so the
            # append stays O(new rows) and keeps the precompute alive.
            # Factors are per (weights, catalog) version — drift from the
            # appended rows only degrades shortlist recall, never rerank
            # exactness — and are refreshed on the next full rebuild.
            projections["sketch"] = self._model.decoder.sketch_candidates(
                projections, self._cache.sketch_factors)
        # Snapshot *before* the version bump: cache versions are globally
        # unique across services, so post-bump arithmetic cannot tell
        # "in sync until this registration" from "already stale".
        store_synced = (self._store is not None
                        and self._store_version == self._cache.version)
        self._cache.append_rows(rows, projections=projections)

        indices = []
        for smiles, drug_id, nodes in zip(smiles_list, drug_ids, node_lists):
            index = len(self._smiles)
            self._smiles.append(smiles)
            self._drug_ids.append(drug_id)
            self._index[drug_id] = index
            self._extension_nodes.append(nodes)
            indices.append(index)
        self._id_table = None
        if store_synced:
            self._append_to_store(rows, projections)
        stats = self._cache.stats
        stats.registrations += len(smiles_list)
        stats.registration_latency.record(time.perf_counter() - start,
                                          time.monotonic())
        return indices

    # ------------------------------------------------------------------
    # Living catalog: append-through, compaction, rollback
    # ------------------------------------------------------------------
    @property
    def catalog_epoch(self) -> int:
        """Monotone identifier of the catalog contents being served.

        Every mutation of the serving rows — rebuild, registration,
        rollback, cache load — moves the epoch; two screens answered
        under the same epoch are answered from bitwise-identical
        catalogs.  The gateway samples this per flush to count epoch
        swaps observed by live traffic.
        """
        return self._cache.version

    @property
    def catalog_version(self) -> int | None:
        """The attached store's committed catalog version (None = no
        store)."""
        self._sync_store()
        return None if self._store is None else self._store.version

    @property
    def shard_store(self) -> ShardStore | None:
        """The attached shard store, if any (versions/recovery live on
        it)."""
        return self._store

    def _invalidate_execution(self) -> None:
        """Reset execution tiers after a store mutation.

        The pool workers opened the pre-mutation manifest at init, so the
        pool is closed (a fresh one lazily reopens the committed version);
        remote workers are re-validated on their next request, where
        version skew triggers a worker-side re-open instead of exclusion.
        The memoized catalog engine is keyed on the store version and
        rebuilds by itself.
        """
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        if self._remote is not None:
            self._remote.invalidate_validation()

    def _append_to_store(self, rows: np.ndarray, projections: dict) -> None:
        """Carry freshly registered rows through to the attached store.

        Called with the in-memory registration already complete.  Any
        append failure degrades gracefully — the store detaches and the
        service keeps serving in-memory, exactly the pre-living-catalog
        behaviour.  (A simulated :class:`~repro.serving.faults.CrashPoint`
        is a ``BaseException`` and deliberately flies past the
        degradation path, like a real ``kill -9`` would.)
        """
        store = self._store
        if store is None:
            return
        if store.is_quantized:
            # int8 segments would need requantization against the store's
            # global per-column scales; quantized stores stay frozen
            # snapshots (documented limitation) — fall back in-memory.
            self._detach_store()
            return
        try:
            proj_rows = dict(projections)
            if ("sketch" in store.projection_names
                    and "sketch" not in proj_rows):
                # The store was saved approx-ready but the in-memory
                # sketch precompute was released at open_shards; sketch
                # the new rows with the store's own factors.
                factors = (self._cache.sketch_factors
                           or store.sketch_factors())
                if factors is None:
                    raise ValueError("store declares a sketch projection "
                                     "but carries no factors")
                self._cache.sketch_factors = factors
                proj_rows["sketch"] = self._model.decoder.sketch_candidates(
                    proj_rows, factors)
            store.append(rows, proj_rows,
                         catalog_digest=self._catalog_digest())
        except Exception:
            self._detach_store()
            return
        self._store_version = self._cache.version
        self._cache.stats.appends_committed += 1
        self._invalidate_execution()

    def compact_shards(self, num_shards: int | None = None) -> int:
        """Merge accumulated append segments into full shards.

        Commits a new catalog version under the store's journal + atomic
        replace protocol; the served rows are unchanged (screens stay
        bitwise-identical), only the on-disk layout is consolidated.
        Returns the new committed version.  Old segment files survive for
        retained versions — ``service.shard_store.gc()`` reclaims them.
        """
        self._sync_store()
        if self._store is None:
            raise RuntimeError("compact_shards needs an attached shard "
                               "store (save_shards + open_shards first)")
        version = self._store.compact(num_shards,
                                      catalog_digest=self._catalog_digest())
        self._cache.stats.compactions += 1
        self._invalidate_execution()
        return version

    def rollback_catalog(self, version: int) -> int:
        """Roll the live catalog back to a retained store version.

        The target version must be a *prefix* of the current catalog
        (same fingerprint, and its catalog digest equals the digest of
        the first ``num_drugs`` entries) — the catalog is append-only, so
        any retained version of this store qualifies unless the corpus
        itself differs.  The store re-commits the target's content as a
        fresh (monotonic) version and the in-memory bookkeeping, cache
        rows, and projections are truncated to match; subsequent screens
        are bitwise-identical to the target version's.  Returns the new
        committed store version.
        """
        self._sync_store()
        store = self._store
        if store is None:
            raise RuntimeError("rollback_catalog needs an attached shard "
                               "store (save_shards + open_shards first)")
        target = store.manifest_for(version)
        n = int(target["num_drugs"])
        if not self._num_corpus <= n <= self.num_drugs:
            raise ValueError(
                f"version {version} covers {n} drugs; rollback can only "
                f"unwind registered extensions "
                f"({self._num_corpus}..{self.num_drugs} drugs)")
        if target.get("fingerprint") != store.manifest.get("fingerprint"):
            raise ValueError(
                f"version {version} was committed under different model "
                f"weights; cannot roll back a live service onto it")
        if target.get("catalog_digest") != self._catalog_digest(n):
            raise ValueError(
                f"version {version} is not a prefix of the current "
                f"catalog; cannot roll back")
        new_version = store.rollback(version)
        # In-memory truncation mirrors the store: rows are append-only,
        # so the prefix restores the target catalog exactly.
        if n < self.num_drugs:
            for drug_id in self._drug_ids[n:]:
                del self._index[drug_id]
            del self._smiles[n:]
            del self._drug_ids[n:]
            del self._extension_nodes[n - self._num_corpus:]
            self._id_table = None
        self._cache.truncate_rows(n)
        self._store_version = self._cache.version
        self._cache.stats.rollbacks += 1
        self._invalidate_execution()
        return new_version

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _as_query_index(self, query: int | str) -> int:
        """Resolve one query (catalog index or drug id) to an index.

        Booleans are rejected explicitly — ``isinstance(True, int)`` holds,
        so without the check ``screen(True)`` would silently screen catalog
        index 1.
        """
        if isinstance(query, (bool, np.bool_)):
            raise TypeError(
                f"query must be a catalog index or drug id, not a bool "
                f"(got {query!r})")
        if isinstance(query, (int, np.integer)):
            return int(query)
        return self.index_of(query)

    def _check_pairs(self, pairs: np.ndarray) -> np.ndarray:
        raw = np.asarray(pairs)
        if raw.dtype == np.bool_:
            raise TypeError(
                "pairs must hold integer catalog indices, not booleans")
        pairs = np.asarray(raw, dtype=np.int64).reshape(-1, 2)
        if pairs.size:
            bad = (pairs < 0) | (pairs >= self.num_drugs)
            if bad.any():
                row, col = (int(v) for v in np.argwhere(bad)[0])
                raise IndexError(
                    f"pair {row}, position {col}: index {int(pairs[row, col])} "
                    f"out of catalog range [0, {self.num_drugs})")
        return pairs

    def score_pairs(self, pairs: np.ndarray) -> np.ndarray:
        """Interaction probabilities for ``pairs`` of catalog indices."""
        pairs = self._check_pairs(pairs)
        self._ensure_fresh()
        self._cache.stats.pairs_scored += len(pairs)
        return self._model.predict_proba_from_embeddings(
            self._cache.embeddings, pairs)

    def _ids_to_indices(self, ids: np.ndarray) -> np.ndarray:
        """Vectorized drug-id -> catalog-index lookup via a sorted table."""
        if self._id_table is None:
            table = np.asarray(self._drug_ids)
            order = np.argsort(table).astype(np.int64)
            self._id_table = (table[order], order)
        sorted_ids, perm = self._id_table
        # searchsorted needs a common dtype; widen to the longer string
        # type — whichever side is narrower, so a query id longer than
        # every catalog id is compared in full, never truncated.
        if ids.dtype < sorted_ids.dtype:
            ids = ids.astype(sorted_ids.dtype)
        elif sorted_ids.dtype < ids.dtype:
            sorted_ids = sorted_ids.astype(ids.dtype)
        pos = np.searchsorted(sorted_ids, ids)
        safe = np.minimum(pos, len(sorted_ids) - 1)
        bad = sorted_ids[safe] != ids
        if bad.any():
            where = np.argwhere(bad)[0]
            raise KeyError(f"unknown drug id {ids[tuple(where)]!r} "
                           f"(pair {int(where[0])})")
        return perm[safe]

    def score_id_pairs(self, id_pairs: list[tuple[str, str]]) -> np.ndarray:
        """Like :meth:`score_pairs`, addressing drugs by their ids.

        One vectorized vocabulary lookup for the whole batch — no per-pair
        Python dictionary walk.
        """
        ids = np.asarray(id_pairs, dtype=str).reshape(-1, 2)
        if not ids.size:
            return np.zeros(0, dtype=np.float64)
        return self.score_pairs(self._ids_to_indices(ids))

    # -- blockwise / sharded screening engine ---------------------------
    # (The pre-engine ``_rank`` — a full stable argsort over dense catalog
    # probabilities — is gone: ranking now happens inside the streaming
    # top-k selection, which reproduces its ordering, ties included.)
    def _catalog(self, approx: bool = False) -> ShardedEmbeddingCatalog:
        """The screening catalog for the current cache contents (memoized).

        With a shard store attached (and still describing the cache), this
        is the memory-mapped catalog; otherwise the in-memory one.  A
        *quantized* store only qualifies for approximate screens — its
        int8 pages cannot serve the exact tier, so exact mode falls back
        to the in-memory engine while the store stays attached.  Keys
        embed the cache's globally unique version, so a rebuilt, appended,
        or freshly loaded cache can never be served a stale engine.
        """
        self._sync_store()
        if self._store is not None and (approx or not self._store.is_quantized):
            # The store version rides the key, so an append/compaction/
            # rollback commit retires the memoized engine and the next
            # screen admits the new catalog version (in-flight screens
            # keep their version-pinned MappedShardCatalog).
            key = ("store", id(self._store), self._store.version,
                   self.block_size)
            if self._catalog_engine is None or self._catalog_key != key:
                self._catalog_engine = self._store.catalog(self.block_size)
                self._catalog_key = key
            return self._catalog_engine
        projections = self._cache.ensure_projections(self._model.decoder)
        key = (self._cache.version, self.block_size, self.num_shards)
        if self._catalog_engine is None or self._catalog_key != key:
            self._catalog_engine = ShardedEmbeddingCatalog(
                self._cache.embeddings, projections,
                num_shards=self.num_shards, block_size=self.block_size)
            self._catalog_key = key
        return self._catalog_engine

    def _kernel(self):
        if self._screen_kernel is None:
            self._screen_kernel = make_screen_kernel(self._model.decoder)
        return self._screen_kernel

    def _resolve_exclude(self, exclude: tuple) -> np.ndarray:
        resolved = {self._as_query_index(i) for i in exclude}
        # Sorted, so the resolved index order never depends on set/hash
        # iteration order — the same exclusion list produces byte-identical
        # exclusion arrays in every process (executor dispatch included).
        return np.sort(np.fromiter(resolved, dtype=np.int64,
                                   count=len(resolved)))

    def _use_parallel(self, parallel: bool | None, approx: bool) -> bool:
        """Route a screen to the process pool?  Validates explicit asks."""
        self._sync_store()
        available = (self._store is not None
                     and not self._store.is_quantized
                     and self.num_workers > 1 and not approx)
        if parallel is None:
            return available
        if parallel and not available:
            if approx:
                raise ValueError(
                    "approximate screening runs in-process; drop "
                    "parallel=True or use exact mode")
            raise RuntimeError(
                "parallel screening needs an attached exact (non-quantized) "
                "shard store (save_shards + open_shards) and num_workers > 1")
        return bool(parallel)

    def _screen_embeddings(self, query_embeddings: np.ndarray,
                           top_k: int | list[int], exclude: list[np.ndarray],
                           symmetric: bool, approx: bool,
                           approx_oversample: int,
                           parallel: bool | None = None
                           ) -> list[list[ScreenHit]]:
        """Shared engine behind screen / screen_batch / screen_smiles.

        Exact mode streams probability blocks through per-shard top-k
        selection; scores are bitwise-identical to
        :meth:`HyGNN.screen_probs` over the full catalog for every block
        size, shard layout, query-batch size, and execution plan (serial
        in-memory, serial memory-mapped, multi-process).  ``top_k`` may be
        per-query: each query keeps its own accumulator, so heterogeneous
        budgets in one batch reproduce the homogeneous results bitwise.
        Approximate mode prefilters each block with one cheap GEMM (dot:
        the inner products themselves; MLP: a low-rank sketch of the
        split-weight operands), then exact-reranks the
        ``top_k * approx_oversample`` survivors.
        """
        decoder = self._model.decoder
        kernel = self._kernel()
        num_queries = len(query_embeddings)
        top_ks = normalize_top_k(top_k, num_queries)
        two_sided = symmetric and not decoder.is_symmetric
        use_parallel = self._use_parallel(parallel, approx)
        query_proj = decoder.project_queries(
            query_embeddings,
            sides=("as_left", "as_right") if two_sided else ("as_left",))
        stats = self._cache.stats
        # Excluded candidates are filtered out and never reported, so they
        # are not useful pair evaluations: charge only the eligible ones
        # (every screen excludes at least the query itself).
        eligible = sum(self.num_drugs - e.size for e in exclude)

        if approx:
            if not decoder.supports_prefilter:
                raise ValueError(
                    f"approximate screening needs a decoder with a "
                    f"prefilter; {type(decoder).__name__} has none")
            if approx_oversample < 1:
                raise ValueError("approx_oversample must be >= 1")
            catalog, prefilter, rerank_rows = self._approx_setup(
                kernel, query_proj)
            results, rescored = self._approx_screen(
                catalog, kernel, query_proj, num_queries, top_ks,
                exclude, approx_oversample, two_sided,
                prefilter, rerank_rows)
            # The shortlist scan is one cheap comparison per candidate,
            # not an exact pair score; only the rescores are exact.
            stats.prefilter_pairs += num_queries * self.num_drugs
            stats.pairs_scored += rescored
        else:
            # The remote tier wins the default routing when connected
            # (parallel=None); parallel=True still demands the local
            # process pool, parallel=False forces fully in-process.
            # Every plan is bitwise-identical, so routing is a pure
            # performance/placement decision.
            if parallel is None and self._remote is not None \
                    and self._store is not None:
                results = self._remote.screen(
                    kernel, query_proj, num_queries, top_ks,
                    block_size=self.block_size, exclude=exclude,
                    two_sided=two_sided)
                stats.remote_screens += num_queries
            elif use_parallel:
                results = self._get_executor().screen(
                    kernel, query_proj, num_queries, top_ks,
                    block_size=self.block_size, exclude=exclude,
                    two_sided=two_sided)
                stats.parallel_screens += num_queries
            else:
                results = self._catalog().screen(
                    exact_score_fn(kernel, query_proj, two_sided),
                    num_queries, top_ks, exclude=exclude)
            stats.pairs_scored += eligible * (2 if two_sided else 1)
        stats.screens += num_queries
        return [[ScreenHit(index=int(j), drug_id=self._drug_ids[j],
                           probability=float(p))
                 for j, p in zip(indices, probs)]
                for indices, probs in results]

    def _approx_setup(self, kernel, query_proj):
        """Wire the approximate tier for the current engine state.

        Returns ``(catalog, prefilter, rerank_rows)``: the catalog whose
        blocks the shortlist pass streams, the cheap scoring function for
        those blocks, and the gather that fetches *exact* candidate rows
        for the rerank.  Three configurations:

        * in-memory — sketch factors are (re)built on the cache as needed,
          both passes run over the in-memory arrays;
        * exact shard store — blocks (sketch rows included) stream from
          the mmap; the rerank gathers the same mapped rows;
        * quantized shard store — the prefilter dequantizes the int8 pages
          of its operand on the fly; the rerank reads the exact rows kept
          in memory, so shortlist probabilities carry no quantization
          error.

        For a sketch decoder (MLP) this also stashes the per-batch query
        operand under ``query_proj["sketch"]``.
        """
        decoder = self._model.decoder
        needs_sketch = getattr(decoder, "needs_sketch", False)
        self._sync_store()
        store = self._store
        if store is None:
            if needs_sketch:
                self._cache.ensure_sketch(decoder, rank=self._sketch_rank)
                query_proj["sketch"] = kernel.sketch_queries(
                    query_proj, self._cache.sketch_factors)
            catalog = self._catalog()

            def prefilter(_emb_block, proj_block):
                return kernel.prefilter_block(query_proj, proj_block)

            return catalog, prefilter, catalog.rows

        if needs_sketch:
            factors = self._cache.sketch_factors
            if factors is None and "sketch" in store.projection_names:
                factors = store.sketch_factors()
            if factors is None:
                raise ValueError(
                    "attached shard store carries no prefilter sketch for "
                    f"{type(decoder).__name__}; re-save it with "
                    "save_shards() to serve approximate mode")
            # Stash on the cache so later batches (and registrations)
            # skip the manifest round-trip.
            self._cache.sketch_factors = factors
            query_proj["sketch"] = kernel.sketch_queries(query_proj, factors)
        catalog = self._catalog(approx=True)
        if not store.is_quantized:
            def prefilter(_emb_block, proj_block):
                return kernel.prefilter_block(query_proj, proj_block)

            return catalog, prefilter, catalog.rows

        # Quantized store: only the prefilter operand's int8 pages are
        # touched; one dequantize per block keeps the stream O(block).
        operand = "sketch" if needs_sketch else "emb"
        scales = store.scales(operand)

        def prefilter(_emb_block, proj_block):
            page = dequantize_int8(proj_block[operand], scales,
                                   dtype=self._dtype)
            return kernel.prefilter_block(query_proj, {operand: page})

        cached_proj = self._cache.projections
        embeddings = self._cache.embeddings

        def rerank_rows(indices):
            idx = np.asarray(indices, dtype=np.int64)
            emb_rows = embeddings[idx]
            if cached_proj is not None:
                proj_rows = {name: rows[idx]
                             for name, rows in cached_proj.items()}
            else:
                proj_rows = decoder.candidate_projections(emb_rows)
            return emb_rows, proj_rows

        return catalog, prefilter, rerank_rows

    def _batched_rerank(self, kernel, query_proj, shortlist, top_ks,
                        two_sided, rerank_rows):
        """One-pass exact rerank of every query's shortlist, when possible.

        Requires a decoder with a gather-rerank kernel (``score_rows``)
        and uniform shortlist lengths (heterogeneous ``top_k``/``exclude``
        batches fall back to the per-query loop — returns ``None``).  The
        candidate rows of all shortlists are gathered with one fancy-index
        call and scored as a ``(Q, K, width)`` batch; probabilities are
        bitwise identical to the per-query path, so which path ran is
        unobservable in the results.
        """
        if not hasattr(kernel, "score_rows"):
            return None
        lengths = {len(ci) for ci, _ in shortlist}
        if len(lengths) != 1 or 0 in lengths:
            return None
        num_rows = lengths.pop()
        num_queries = len(shortlist)
        flat = np.concatenate([ci for ci, _ in shortlist])
        _emb_rows, proj_rows = rerank_rows(flat)
        rows3d = {name: value.reshape(num_queries, num_rows,
                                      *value.shape[1:])
                  for name, value in proj_rows.items()}
        probs = stable_sigmoid(kernel.score_rows(query_proj, rows3d))
        if two_sided:
            probs = 0.5 * (probs + stable_sigmoid(
                kernel.score_rows(query_proj, rows3d, reverse=True)))
        results = []
        for qi, (cand_indices, _approx_scores) in enumerate(shortlist):
            select = np.lexsort((cand_indices,
                                 -probs[qi]))[:max(top_ks[qi], 0)]
            results.append((cand_indices[select], probs[qi][select]))
        rescored = flat.size * (2 if two_sided else 1)
        return results, rescored

    def _approx_screen(self, catalog, kernel, query_proj, num_queries,
                       top_ks, exclude, oversample, two_sided,
                       prefilter, rerank_rows):
        """Cheap-operand prefilter, then exact rerank of the survivors.

        The shortlist pass streams ``prefilter`` scores (dot: one
        inner-product GEMM per block; MLP: the low-rank sketch GEMM, a
        forward-orientation surrogate even for symmetric screens) through
        the same top-k engine as exact mode, keeping ``top_k * oversample``
        survivors per query.  Returns ``(results, rescored)`` where
        ``rescored`` counts the shortlist rows that went through the exact
        kernel.
        """
        shortlist = catalog.screen(
            prefilter, num_queries,
            [max(k * oversample, k) for k in top_ks], exclude=exclude)
        batched = self._batched_rerank(kernel, query_proj, shortlist,
                                       top_ks, two_sided, rerank_rows)
        if batched is not None:
            return batched
        results = []
        rescored = 0
        for qi, (cand_indices, _approx_scores) in enumerate(shortlist):
            if not len(cand_indices):
                results.append((cand_indices, np.zeros(0)))
                continue
            emb_rows, proj_rows = rerank_rows(cand_indices)
            rescored += len(cand_indices) * (2 if two_sided else 1)
            qi_proj = _slice_query(query_proj, qi)
            # Rerank with the exact kernel (two-sided when the screen is):
            # probabilities of the survivors are what exact mode would
            # report for them.
            probs = exact_score_fn(kernel, qi_proj, two_sided)(
                emb_rows, proj_rows)[0]
            select = np.lexsort((cand_indices, -probs))[:max(top_ks[qi], 0)]
            results.append((cand_indices[select], probs[select]))
        return results, rescored

    def screen(self, query: int | str, top_k: int = 5,
               exclude: tuple = (), symmetric: bool = False,
               approx: bool = False, approx_oversample: int = 4,
               parallel: bool | None = None) -> list[ScreenHit]:
        """Top-k most likely interaction partners of one catalog drug.

        ``symmetric=True`` averages σ(γ(x, y)) and σ(γ(y, x)) — the MLP
        decoder is order-sensitive; the dot decoder is already symmetric.
        ``approx=True`` ranks via a cheap prefilter (inner products for the
        dot decoder, a low-rank sketch for the MLP decoder) keeping
        ``top_k * approx_oversample`` candidates for an exact rerank —
        near-ties beyond the shortlist may be missed.
        ``parallel`` picks the execution plan: ``None`` (default) uses the
        process pool whenever a shard store is attached and
        ``num_workers > 1``; ``False`` forces in-process; ``True`` demands
        the pool (raises if no store is attached).  Every plan returns
        bitwise-identical hits.
        """
        index = self._as_query_index(query)
        if not 0 <= index < self.num_drugs:
            raise IndexError(f"catalog index {index} out of range")
        self._ensure_fresh()
        query_emb = self._cache.embeddings[index:index + 1]
        if exclude:
            excluded = np.union1d(self._resolve_exclude(exclude),
                                  np.array([index], dtype=np.int64))
        else:
            excluded = np.array([index], dtype=np.int64)
        return self._screen_embeddings(query_emb, top_k, [excluded],
                                       symmetric, approx, approx_oversample,
                                       parallel=parallel)[0]

    def _normalize_exclude_arg(self, exclude,
                               num_queries: int) -> list[np.ndarray]:
        """Resolve a shared or per-query ``exclude`` to index arrays.

        A flat collection of catalog indices / drug ids is one shared
        exclusion set applied to every query; a collection whose elements
        are themselves collections (tuples, lists, sets, arrays) is
        per-query and must have one entry per query.  Deciding by element
        type — the same rule as :func:`repro.serving.shards
        .normalize_exclude` — keeps ``exclude=(3, "drug_5")`` shared even
        when the batch happens to have two queries.
        """
        if exclude is None:
            exclude = ()
        if isinstance(exclude, (list, tuple)) and len(exclude) and all(
                isinstance(e, (list, tuple, set, frozenset, np.ndarray))
                for e in exclude):
            if len(exclude) != num_queries:
                raise ValueError(
                    f"per-query exclude has {len(exclude)} entries for "
                    f"{num_queries} queries")
            return [self._resolve_exclude(tuple(e)) for e in exclude]
        shared = self._resolve_exclude(tuple(exclude))
        return [shared] * num_queries

    def screen_batch(self, queries: list[int | str],
                     top_k: int | list[int] = 5,
                     exclude: tuple | list = (), symmetric: bool = False,
                     approx: bool = False, approx_oversample: int = 4,
                     parallel: bool | None = None
                     ) -> list[list[ScreenHit]]:
        """Micro-batched screening: many queries, one pass over the catalog.

        Every candidate block is scored against the whole query batch in a
        single vectorized kernel call (for the dot prefilter, one GEMM per
        block), so catalog traffic is paid once for the batch instead of
        once per query.  The batch may be heterogeneous: ``top_k`` accepts
        a per-query list and ``exclude`` a per-query list of collections
        (a flat tuple of indices/ids stays one shared exclusion set) —
        which is what lets the async gateway coalesce unrelated callers'
        requests into one flush.  Per-query results are bitwise-identical
        to calling :meth:`screen` one query at a time with that query's
        own ``top_k``/``exclude``.  ``parallel`` routes the batch to the
        shard process pool exactly as on :meth:`screen`.
        """
        if not len(queries):
            return []
        indices = [self._as_query_index(q) for q in queries]
        for index in indices:
            if not 0 <= index < self.num_drugs:
                raise IndexError(f"catalog index {index} out of range")
        self._ensure_fresh()
        base = self._normalize_exclude_arg(exclude, len(queries))
        per_query = [np.union1d(e, np.array([index], dtype=np.int64))
                     for e, index in zip(base, indices)]
        query_embs = self._cache.embeddings[np.asarray(indices,
                                                       dtype=np.int64)]
        return self._screen_embeddings(query_embs, top_k, per_query,
                                       symmetric, approx, approx_oversample,
                                       parallel=parallel)

    def screen_smiles(self, smiles: str, top_k: int = 5,
                      symmetric: bool = False,
                      allow_unknown: bool = False,
                      approx: bool = False,
                      approx_oversample: int = 4,
                      parallel: bool | None = None) -> list[ScreenHit]:
        """Screen an *unregistered* SMILES against the catalog (transient).

        The query drug is embedded on the fly against the frozen context and
        discarded — nothing is added to the catalog, and the cached
        embedding table is never copied: the transient query rides the same
        blockwise engine as catalog queries.
        """
        return self.screen_smiles_batch(
            [smiles], top_k=top_k, symmetric=symmetric,
            allow_unknown=allow_unknown, approx=approx,
            approx_oversample=approx_oversample, parallel=parallel)[0]

    def screen_smiles_batch(self, smiles_list: list[str],
                            top_k: int | list[int] = 5,
                            symmetric: bool = False,
                            allow_unknown: bool = False,
                            approx: bool = False,
                            approx_oversample: int = 4,
                            parallel: bool | None = None
                            ) -> list[list[ScreenHit]]:
        """Micro-batched :meth:`screen_smiles`: one encode, one catalog pass.

        All transient queries are tokenized and embedded in a single
        :meth:`~repro.core.encoder.HyGNNEncoder.encode_edges_subset` call
        (identical embeddings to one-at-a-time encoding — each hyperedge's
        segments reduce independently) and screened as one engine batch.
        ``top_k`` may be per-query; per-query results are bitwise-identical
        to serial :meth:`screen_smiles` calls.
        """
        if not len(smiles_list):
            return []
        node_lists = self._tokenize_batch(list(smiles_list), allow_unknown)
        self._ensure_fresh()
        node_ids = (np.concatenate(node_lists) if node_lists
                    else np.zeros(0, dtype=np.int64))
        edge_ids = np.repeat(np.arange(len(node_lists), dtype=np.int64),
                             [len(n) for n in node_lists])
        model = self._model
        was_training = model.training
        model.eval()
        try:
            query_embs = model.encoder.encode_edges_subset(
                self._cache.context, node_ids, edge_ids,
                len(node_lists)).numpy()
        finally:
            model.train(was_training)
        query_embs = query_embs.astype(self._dtype, copy=False)
        empty = np.zeros(0, dtype=np.int64)
        return self._screen_embeddings(query_embs, top_k,
                                       [empty] * len(node_lists), symmetric,
                                       approx, approx_oversample,
                                       parallel=parallel)
