"""Batched DDI screening service over cached drug embeddings.

``HyGNN.predict_proba`` re-encodes the *entire* corpus hypergraph for every
call — fine for training loops, wasteful for serving, where the catalog is
fixed and only the query pairs change.  :class:`DDIScreeningService` exploits
the encoder's inductive split (:meth:`HyGNNEncoder.encode_with_context` /
:meth:`~repro.core.encoder.HyGNNEncoder.encode_edges_subset`):

1. Drug embeddings are computed **once** per (model weights, catalog) version
   and cached; every scoring call after that is a vectorized decoder pass,
   O(pairs) instead of O(full-graph encode).  Cached scores are
   bitwise-identical to ``model.predict_proba`` on the catalog hypergraph.
2. Weight updates are detected by fingerprint (see
   :mod:`repro.serving.cache`) and invalidate the cache automatically;
   :meth:`DDIScreeningService.invalidate` is the explicit override.
3. New drugs register incrementally: their SMILES is tokenized against the
   *fitted* vocabulary and encoded against the frozen corpus context — the
   paper's cold-start semantics (Table IX) — without re-encoding a single
   existing catalog drug.
4. ``screen`` answers top-k "drug X against the whole catalog" queries.

Build one with a live model (:meth:`DDIScreeningService.__init__`) or
straight from a ``serialize.save_model`` artifact
(:meth:`DDIScreeningService.from_artifact`) for a train → save → serve path.
"""

from __future__ import annotations

import hashlib
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.encoder import EncoderContext
from ..core.model import HyGNN
from ..core.serialize import load_model
from ..hypergraph import DrugHypergraphBuilder, Hypergraph
from ..nn import Tensor
from .cache import EmbeddingCache, ServiceStats, weights_fingerprint


@dataclass(frozen=True)
class ScreenHit:
    """One ranked candidate from a top-k screening query."""

    index: int
    drug_id: str
    probability: float


class DDIScreeningService:
    """Embed-once / score-many serving layer for a trained HyGNN model."""

    def __init__(self, model: HyGNN, builder: DrugHypergraphBuilder,
                 catalog_smiles: list[str],
                 drug_ids: list[str] | None = None,
                 auto_refresh: bool = True,
                 fingerprint_mode: str = "fast"):
        if not catalog_smiles:
            raise ValueError("catalog must contain at least one drug")
        vocab = builder.vocabulary  # raises if the builder is unfitted
        if len(vocab) != model.encoder.num_substructures:
            raise ValueError(
                f"builder vocabulary ({len(vocab)}) does not match the "
                f"model ({model.encoder.num_substructures} substructures)")
        if drug_ids is None:
            drug_ids = [f"drug_{i}" for i in range(len(catalog_smiles))]
        if len(drug_ids) != len(catalog_smiles):
            raise ValueError("drug_ids length mismatch")
        if len(set(drug_ids)) != len(drug_ids):
            raise ValueError("drug ids must be unique")

        self._model = model
        self._builder = builder
        self._vocab = vocab
        self._auto_refresh = auto_refresh
        self._fingerprint_mode = fingerprint_mode
        self._smiles: list[str] = list(catalog_smiles)
        self._drug_ids: list[str] = list(drug_ids)
        self._index: dict[str, int] = {d: i for i, d in enumerate(drug_ids)}
        # The corpus hypergraph is the frozen context every embedding — and
        # every future registration — is computed against.
        self._corpus: Hypergraph = builder.transform(catalog_smiles)
        self._num_corpus = self._corpus.num_edges
        # Incidence node ids of incrementally registered drugs, in
        # registration order (needed to re-encode them after invalidation).
        self._extension_nodes: list[np.ndarray] = []
        self._cache = EmbeddingCache()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(cls, path: str | Path, catalog_smiles: list[str],
                      drug_ids: list[str] | None = None,
                      **kwargs) -> "DDIScreeningService":
        """Load a ``serialize.save_model`` archive and serve it."""
        model, builder = load_model(path)
        return cls(model, builder, catalog_smiles, drug_ids=drug_ids,
                   **kwargs)

    # ------------------------------------------------------------------
    # Catalog introspection
    # ------------------------------------------------------------------
    @property
    def num_drugs(self) -> int:
        return len(self._smiles)

    @property
    def drug_ids(self) -> list[str]:
        return list(self._drug_ids)

    @property
    def stats(self) -> ServiceStats:
        return self._cache.stats

    @property
    def embeddings(self) -> np.ndarray:
        """Read-only view of the cached catalog embeddings."""
        self._ensure_fresh()
        view = self._cache.embeddings.view()
        view.flags.writeable = False
        return view

    def index_of(self, drug_id: str) -> int:
        try:
            return self._index[drug_id]
        except KeyError:
            raise KeyError(f"unknown drug id {drug_id!r}") from None

    # ------------------------------------------------------------------
    # Cache lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Explicitly drop the cache; next query re-encodes the catalog."""
        self._cache.drop()

    def refresh(self, force: bool = False) -> None:
        """Rebuild the cache now (``force=True`` skips the staleness check)."""
        if force:
            self._cache.drop()
        self._ensure_fresh(check=True)

    def _catalog_digest(self) -> str:
        """Content hash of the catalog the embedding rows belong to."""
        digest = hashlib.blake2b(digest_size=16)
        for smiles, drug_id in zip(self._smiles, self._drug_ids):
            digest.update(smiles.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(drug_id.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def save_cache(self, path: str | Path) -> Path:
        """Persist the embedding cache (encoding first if it is cold).

        The snapshot carries the weight fingerprint and a digest of the
        catalog contents, so a later :meth:`load_cache` can verify it still
        matches both the model and the drugs being served.
        """
        self._ensure_fresh()
        return self._cache.save(path, catalog_digest=self._catalog_digest())

    def load_cache(self, path: str | Path, strict: bool = False) -> bool:
        """Warm-start from a :meth:`save_cache` snapshot; True on success.

        The snapshot is installed only if it exists, reads cleanly, its
        fingerprint matches the *current* model weights (same fingerprint
        mode included), and its catalog digest matches this service's exact
        drug list — otherwise it is ignored (or, with ``strict=True``, the
        error is raised) and the next query re-encodes as usual.  On
        success the initial corpus encode is skipped entirely.
        """
        try:
            loaded = EmbeddingCache.load(path)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # Missing on first boot, truncated write, foreign file format —
            # all mean "no usable snapshot", which is not an error here.
            if strict:
                raise
            return False
        fingerprint = self._fingerprint()
        if not loaded.matches(fingerprint):
            if strict:
                raise ValueError(
                    "persisted cache fingerprint does not match the current "
                    "model weights")
            return False
        if loaded.catalog_digest != self._catalog_digest():
            if strict:
                raise ValueError(
                    "persisted cache was saved for a different drug catalog")
            return False
        if (loaded.embeddings.shape[0] != self.num_drugs
                or loaded.context.num_layers != len(self._model.encoder.layers)):
            if strict:
                raise ValueError(
                    f"persisted cache covers {loaded.embeddings.shape[0]} "
                    f"drugs / {loaded.context.num_layers} context layers; "
                    f"this service has {self.num_drugs} drugs / "
                    f"{len(self._model.encoder.layers)} layers")
            return False
        loaded.stats = self._cache.stats
        self._cache = loaded
        self._cache.stats.cache_loads += 1
        return True

    def _fingerprint(self) -> tuple:
        return weights_fingerprint(self._model, mode=self._fingerprint_mode)

    def _ensure_fresh(self, check: bool | None = None) -> None:
        if check is None:
            check = self._auto_refresh
        if self._cache.valid and not check:
            self._cache.stats.cache_hits += 1
            return
        fingerprint = self._fingerprint()
        if self._cache.matches(fingerprint):
            self._cache.stats.cache_hits += 1
            return
        self._cache.drop()
        self._rebuild(fingerprint)

    def _rebuild(self, fingerprint: tuple) -> None:
        model = self._model
        was_training = model.training
        model.eval()
        try:
            corpus_emb, context = model.encoder.encode_with_context(
                self._corpus.node_ids, self._corpus.edge_ids,
                self._corpus.num_edges,
                partitions=(self._corpus.node_partition,
                            self._corpus.edge_partition))
            rows = [corpus_emb.numpy()]
            if self._extension_nodes:
                node_ids = np.concatenate(self._extension_nodes)
                edge_ids = np.repeat(
                    np.arange(len(self._extension_nodes), dtype=np.int64),
                    [len(n) for n in self._extension_nodes])
                ext = model.encoder.encode_edges_subset(
                    context, node_ids, edge_ids, len(self._extension_nodes))
                rows.append(ext.numpy())
            # Detach the context: serving never backprops, and a live context
            # would pin the whole corpus-encode autograd graph in the cache.
            detached = EncoderContext(layer_node_feats=tuple(
                Tensor(t.data) for t in context.layer_node_feats))
            self._cache.install(fingerprint, detached,
                                np.concatenate(rows, axis=0))
        finally:
            model.train(was_training)

    # ------------------------------------------------------------------
    # Incremental registration
    # ------------------------------------------------------------------
    def _tokenize_batch(self, smiles_list: list[str],
                        allow_unknown: bool) -> list[np.ndarray]:
        token_sets = self._builder.drug_token_sets(smiles_list)
        node_lists = []
        for smiles, tokens in zip(smiles_list, token_sets):
            if not tokens and not allow_unknown:
                raise ValueError(
                    f"no known substructures in {smiles!r}; its embedding "
                    f"would be all-zero (pass allow_unknown=True to register "
                    f"anyway)")
            node_lists.append(np.array(
                sorted(self._vocab[t] for t in tokens), dtype=np.int64))
        return node_lists

    def _tokenize(self, smiles: str, allow_unknown: bool) -> np.ndarray:
        return self._tokenize_batch([smiles], allow_unknown)[0]

    def register_drug(self, smiles: str, drug_id: str | None = None,
                      allow_unknown: bool = False) -> int:
        """Add one new drug to the catalog; O(its substructures), not O(catalog).

        The drug is tokenized against the fitted vocabulary and embedded
        against the frozen corpus context — existing catalog embeddings are
        neither recomputed nor touched.  Returns the new catalog index.
        """
        return self.register_drugs([smiles],
                                   None if drug_id is None else [drug_id],
                                   allow_unknown=allow_unknown)[0]

    def register_drugs(self, smiles_list: list[str],
                       drug_ids: list[str] | None = None,
                       allow_unknown: bool = False) -> list[int]:
        """Batch registration; identical embeddings to one-at-a-time calls."""
        if drug_ids is None:
            drug_ids = [f"drug_{len(self._smiles) + i}"
                        for i in range(len(smiles_list))]
        if len(drug_ids) != len(smiles_list):
            raise ValueError("drug_ids length mismatch")
        clashes = [d for d in drug_ids if d in self._index]
        if clashes or len(set(drug_ids)) != len(drug_ids):
            raise ValueError(f"duplicate drug ids: {clashes or drug_ids}")
        node_lists = self._tokenize_batch(smiles_list, allow_unknown)

        self._ensure_fresh()
        node_ids = (np.concatenate(node_lists) if node_lists
                    else np.zeros(0, dtype=np.int64))
        edge_ids = np.repeat(np.arange(len(node_lists), dtype=np.int64),
                             [len(n) for n in node_lists])
        model = self._model
        was_training = model.training
        model.eval()
        try:
            rows = model.encoder.encode_edges_subset(
                self._cache.context, node_ids, edge_ids,
                len(node_lists)).numpy()
        finally:
            model.train(was_training)
        self._cache.append_rows(rows)

        indices = []
        for smiles, drug_id, nodes in zip(smiles_list, drug_ids, node_lists):
            index = len(self._smiles)
            self._smiles.append(smiles)
            self._drug_ids.append(drug_id)
            self._index[drug_id] = index
            self._extension_nodes.append(nodes)
            indices.append(index)
        return indices

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _check_pairs(self, pairs: np.ndarray) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if pairs.size and (pairs.min() < 0 or pairs.max() >= self.num_drugs):
            raise IndexError("pair index out of catalog range")
        return pairs

    def score_pairs(self, pairs: np.ndarray) -> np.ndarray:
        """Interaction probabilities for ``pairs`` of catalog indices."""
        pairs = self._check_pairs(pairs)
        self._ensure_fresh()
        self._cache.stats.pairs_scored += len(pairs)
        return self._model.predict_proba_from_embeddings(
            self._cache.embeddings, pairs)

    def score_id_pairs(self, id_pairs: list[tuple[str, str]]) -> np.ndarray:
        """Like :meth:`score_pairs`, addressing drugs by their ids."""
        pairs = np.array([[self.index_of(a), self.index_of(b)]
                          for a, b in id_pairs], dtype=np.int64)
        return self.score_pairs(pairs.reshape(-1, 2))

    def _rank(self, probs: np.ndarray, top_k: int,
              exclude: set[int]) -> list[ScreenHit]:
        if top_k <= 0:
            return []
        order = np.argsort(-probs, kind="stable")
        hits: list[ScreenHit] = []
        for j in order:
            if int(j) in exclude:
                continue
            hits.append(ScreenHit(index=int(j), drug_id=self._drug_ids[j],
                                  probability=float(probs[j])))
            if len(hits) == top_k:
                break
        return hits

    def screen(self, query: int | str, top_k: int = 5,
               exclude: tuple = (), symmetric: bool = False
               ) -> list[ScreenHit]:
        """Top-k most likely interaction partners of one catalog drug.

        ``symmetric=True`` averages σ(γ(x, y)) and σ(γ(y, x)) — the MLP
        decoder is order-sensitive; the dot decoder is already symmetric.
        """
        index = query if isinstance(query, int) else self.index_of(query)
        if not 0 <= index < self.num_drugs:
            raise IndexError(f"catalog index {index} out of range")
        candidates = np.arange(self.num_drugs, dtype=np.int64)
        pairs = np.stack([np.full_like(candidates, index), candidates], axis=1)
        probs = self.score_pairs(pairs)
        if symmetric:
            probs = 0.5 * (probs + self.score_pairs(pairs[:, ::-1]))
        self._cache.stats.screens += 1
        excluded = {index} | {i if isinstance(i, int) else self.index_of(i)
                              for i in exclude}
        return self._rank(probs, top_k, excluded)

    def screen_smiles(self, smiles: str, top_k: int = 5,
                      symmetric: bool = False,
                      allow_unknown: bool = False) -> list[ScreenHit]:
        """Screen an *unregistered* SMILES against the catalog (transient).

        The query drug is embedded on the fly against the frozen context and
        discarded — nothing is added to the catalog.
        """
        nodes = self._tokenize(smiles, allow_unknown)
        self._ensure_fresh()
        model = self._model
        was_training = model.training
        model.eval()
        try:
            query_emb = model.encoder.encode_edges_subset(
                self._cache.context, nodes,
                np.zeros(len(nodes), dtype=np.int64), 1).numpy()
        finally:
            model.train(was_training)
        table = np.concatenate([self._cache.embeddings, query_emb], axis=0)
        query_index = self.num_drugs
        candidates = np.arange(self.num_drugs, dtype=np.int64)
        pairs = np.stack([np.full_like(candidates, query_index), candidates],
                         axis=1)
        probs = self._model.predict_proba_from_embeddings(table, pairs)
        self._cache.stats.pairs_scored += len(pairs)
        if symmetric:
            probs = 0.5 * (probs + self._model.predict_proba_from_embeddings(
                table, pairs[:, ::-1]))
            self._cache.stats.pairs_scored += len(pairs)
        self._cache.stats.screens += 1
        return self._rank(probs, top_k, exclude=set())
