"""Memory-mapped shard store: the out-of-core tier of the screening engine.

A :class:`ShardStore` persists a sharded catalog — the embedding rows plus
the precomputed candidate-side decoder projections of each shard — as raw
``.npy`` files next to a JSON manifest:

    store_dir/
      manifest.json                     # layout + fingerprint + digest
      shard_00000.emb.npy               # shard 0's embedding rows
      shard_00000.proj.<name>.npy       # shard 0's rows of projection <name>
      shard_00001.emb.npy
      ...

The manifest records the contiguous row range of every shard, the weight
fingerprint and catalog digest the arrays were computed under (so a loader
can *prove* the store still matches the model and drug list it is about to
serve), and the projection names — including which of them alias the
embedding matrix itself (the dot decoder's identity precompute), which are
never written twice.

Reopening goes through ``np.load(..., mmap_mode="r")``: shard arrays become
read-only memory maps, so a screening pass touches O(block) file pages at a
time and its heap allocations stay O(block + k) — a catalog (projections
included) far larger than RAM streams through the engine.  Because
:class:`MappedShardCatalog` feeds those maps through the *same*
:func:`~repro.serving.shards.screen_shard` /
:func:`~repro.serving.shards.finalize_screen` code as the in-memory
:class:`~repro.serving.shards.ShardedEmbeddingCatalog`, results are
bitwise-identical to the in-memory engine for every block size and shard
count.  Worker processes (:mod:`repro.serving.executor`) open individual
shards by manifest path — no array ever crosses a process boundary.
"""

from __future__ import annotations

import json
import re
import zlib
from pathlib import Path
from typing import Sequence

import numpy as np

from .cache import _fingerprint_from_json, _fingerprint_to_json
from .precision import QUANTIZATION_SCHEMES, quantize_int8
from .shards import CatalogShard, ShardedEmbeddingCatalog

MANIFEST_NAME = "manifest.json"
STORE_FORMAT = "repro.serving.shard-store/v1"
_NAME_RE = re.compile(r"^[A-Za-z0-9_-]+$")
_CRC_CHUNK = 1 << 20  # 1 MB read chunks keep verification O(1) in heap


class ShardIntegrityError(ValueError):
    """A shard file's bytes no longer match its manifest CRC32 checksum.

    Raised instead of serving silently mis-scored results from a torn or
    corrupted ``.npy``; the offending shard index lands in
    :attr:`ShardStore.quarantined` so callers (the remote worker, the
    failover client) can route around it.
    """


def _crc32_file(path: Path) -> int:
    """CRC32 of a file's bytes, streamed in chunks (O(1) heap)."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CRC_CHUNK)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def _atomic_save(root: Path, name: str, array: np.ndarray) -> int:
    """Write ``root/name`` as ``.npy`` via temp file + ``os.replace``.

    Readers can never observe a half-written array: they see either the
    old file or the new one.  Returns the CRC32 of the written bytes for
    the manifest's integrity record.
    """
    tmp = root / (name + ".tmp")
    with open(tmp, "wb") as handle:
        np.save(handle, array)
    crc = _crc32_file(tmp)
    tmp.replace(root / name)
    return crc


def _validate_quantization(spec, embed_dim: int, projections: list[str],
                           aliases: list[str]) -> dict | None:
    """Coerce/validate the optional ``quantization`` manifest field.

    Returns ``None`` (not quantized) or ``{"scheme", "scales"}`` with the
    scale lists converted to float64 arrays.  Any structural problem —
    unknown scheme, missing/mis-typed scales, wrong widths — raises
    ``ValueError``, which best-effort openers treat as "no usable store".
    """
    if spec is None:
        return None
    if not isinstance(spec, dict):
        raise ValueError("quantization must be a mapping")
    scheme = spec.get("scheme")
    if scheme not in QUANTIZATION_SCHEMES:
        raise ValueError(f"unknown quantization scheme {scheme!r}; "
                         f"expected one of {QUANTIZATION_SCHEMES}")
    scales = spec.get("scales")
    if not isinstance(scales, dict) or "embeddings" not in scales \
            or not isinstance(scales.get("projections"), dict):
        raise ValueError("quantization.scales must map 'embeddings' and "
                         "'projections' to per-column scale lists")
    out = {"embeddings": np.asarray(scales["embeddings"],
                                    dtype=np.float64).reshape(-1)}
    if len(out["embeddings"]) != embed_dim:
        raise ValueError(
            f"quantization has {len(out['embeddings'])} embedding scales "
            f"for embed_dim {embed_dim}")
    proj_scales = {}
    for name in projections:
        if name in scales["projections"]:
            proj_scales[name] = np.asarray(scales["projections"][name],
                                           dtype=np.float64).reshape(-1)
    missing = set(projections) - set(proj_scales) - set(aliases)
    if missing:
        raise ValueError(f"quantization is missing scales for projections "
                         f"{sorted(missing)}")
    return {"scheme": scheme, "scales": {"embeddings": out["embeddings"],
                                         "projections": proj_scales}}


class ShardStore:
    """Disk layout + lazy memory-mapped access for one persisted catalog.

    ``ShardStore(path)`` opens an existing store (``path`` may be the store
    directory or the manifest file itself); :meth:`save` writes one.  Shards
    open lazily and are memoized per store instance, so a pool worker that
    is assigned shard *i* maps only shard *i*'s files.
    """

    def __init__(self, path: str | Path, mmap_mode: str | None = "r",
                 verify_checksums: bool = True):
        path = Path(path)
        if path.is_dir():
            path = path / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        if not isinstance(manifest, dict):
            raise ValueError(f"{path} is not a shard-store manifest")
        if manifest.get("format") != STORE_FORMAT:
            raise ValueError(
                f"{path} is not a shard-store manifest "
                f"(format={manifest.get('format')!r})")
        missing = {"num_drugs", "embed_dim", "block_size", "projections",
                   "aliases", "shards"} - manifest.keys()
        if missing:
            raise ValueError(f"{path} is missing manifest keys "
                             f"{sorted(missing)}")
        self.path = path
        self.root = path.parent
        self.mmap_mode = mmap_mode
        self.manifest = manifest
        # Coerce the scalar fields eagerly so any malformed manifest —
        # whatever the corruption — fails here as a ValueError, which
        # best-effort openers (DDIScreeningService.open_shards) treat as
        # "no usable store" rather than crashing.
        try:
            self._num_drugs = int(manifest["num_drugs"])
            self._embed_dim = int(manifest["embed_dim"])
            self._block_size = int(manifest["block_size"])
            if not isinstance(manifest["shards"], list):
                raise TypeError
            fingerprint = manifest.get("fingerprint")
            self.fingerprint = (_fingerprint_from_json(fingerprint)
                                if fingerprint is not None else None)
            self._quantization = _validate_quantization(
                manifest.get("quantization"), self._embed_dim,
                list(manifest["projections"]), list(manifest["aliases"]))
            checksums = manifest.get("checksums")
            if checksums is not None and not isinstance(checksums, dict):
                raise TypeError
            self._checksums = ({str(name): int(crc)
                                for name, crc in checksums.items()}
                               if checksums else None)
        except (TypeError, ValueError, KeyError) as error:
            raise ValueError(
                f"{path} has malformed manifest fields") from error
        self.catalog_digest = manifest.get("catalog_digest")
        self.verify_checksums = verify_checksums
        # Shard indices whose files failed CRC verification — detected
        # rather than served; callers route around them (failover) or
        # re-save the store.
        self.quarantined: set[int] = set()
        self._verified: set[str] = set()
        self._opened: dict[int, CatalogShard] = {}

    # ------------------------------------------------------------------
    @property
    def num_drugs(self) -> int:
        return self._num_drugs

    @property
    def embed_dim(self) -> int:
        return self._embed_dim

    @property
    def num_shards(self) -> int:
        return len(self.manifest["shards"])

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def projection_names(self) -> list[str]:
        return list(self.manifest["projections"])

    @property
    def quantization(self) -> str | None:
        """The quantization scheme the shard files use (None = exact)."""
        return self._quantization["scheme"] if self._quantization else None

    @property
    def is_quantized(self) -> bool:
        return self._quantization is not None

    def scales(self, name: str | None = None) -> np.ndarray:
        """Per-column dequantization scales for ``name`` (None = embeddings).

        Alias projections (rows that *are* the embedding matrix) resolve
        to the embedding scales.
        """
        if self._quantization is None:
            raise ValueError("store is not quantized")
        scales = self._quantization["scales"]
        if name is None or name in self.manifest["aliases"]:
            return scales["embeddings"]
        return scales["projections"][name]

    @property
    def has_checksums(self) -> bool:
        """Whether the manifest carries per-file CRC32 checksums."""
        return self._checksums is not None

    def _verify_file(self, name: str, shard: int | None = None) -> None:
        """CRC-check one store file (memoized); quarantine on mismatch.

        A manifest without checksums (pre-integrity stores) skips
        verification silently — there is nothing to check against.
        """
        if (not self.verify_checksums or self._checksums is None
                or name in self._verified):
            return
        expected = self._checksums.get(name)
        if expected is None:
            return
        actual = _crc32_file(self.root / name)
        if actual != expected:
            if shard is not None:
                self.quarantined.add(shard)
            raise ShardIntegrityError(
                f"{self.root / name}: CRC32 {actual:#010x} does not match "
                f"manifest checksum {expected:#010x} — shard file is torn "
                f"or corrupt" + (f" (shard {shard} quarantined)"
                                 if shard is not None else ""))
        self._verified.add(name)

    def _shard_files(self, index: int) -> list[str]:
        spec = self.manifest["shards"][index]
        return [spec["embeddings"], *spec["projections"].values()]

    def verify(self, strict: bool = False) -> list[int]:
        """CRC-check every shard file now; returns the bad shard indices.

        Bad shards are quarantined.  ``strict=True`` raises
        :class:`ShardIntegrityError` on the first mismatch instead of
        collecting.  A manifest without checksums verifies vacuously.
        """
        bad: list[int] = []
        for index in range(self.num_shards):
            try:
                for name in self._shard_files(index):
                    self._verify_file(name, shard=index)
            except ShardIntegrityError:
                if strict:
                    raise
                bad.append(index)
        return bad

    def sketch_factors(self) -> dict[str, np.ndarray] | None:
        """The prefilter sketch factors saved with the store, if any."""
        spec = self.manifest.get("sketch_factors")
        if not spec:
            return None
        for name in spec.values():
            self._verify_file(name)
        factors = {"mean": np.load(self.root / spec["mean"]),
                   "components": np.load(self.root / spec["components"])}
        if spec.get("std"):
            factors["std"] = np.load(self.root / spec["std"])
        return factors

    def nbytes(self) -> int:
        """Total bytes of the shard files (embeddings + projections)."""
        spec_files = [self.root / spec["embeddings"]
                      for spec in self.manifest["shards"]]
        spec_files += [self.root / name
                       for spec in self.manifest["shards"]
                       for name in spec["projections"].values()]
        return sum(f.stat().st_size for f in spec_files)

    # ------------------------------------------------------------------
    def open_shard(self, index: int) -> CatalogShard:
        """Memory-map one shard's arrays (memoized per store instance)."""
        shard = self._opened.get(index)
        if shard is not None:
            return shard
        spec = self.manifest["shards"][index]
        start, stop = int(spec["start"]), int(spec["stop"])
        # Integrity first: a torn/corrupt file must be *detected* (and the
        # shard quarantined), never silently mis-scored.  The CRC pass
        # streams the file in chunks, so heap stays O(1) even for shards
        # far larger than RAM.
        for name in self._shard_files(index):
            self._verify_file(name, shard=index)
        embeddings = np.load(self.root / spec["embeddings"],
                             mmap_mode=self.mmap_mode)
        if embeddings.shape != (stop - start, self.embed_dim):
            raise ValueError(
                f"shard {index}: {spec['embeddings']} has shape "
                f"{embeddings.shape}, manifest says "
                f"({stop - start}, {self.embed_dim})")
        aliases = set(self.manifest["aliases"])
        projections = {}
        for name in self.manifest["projections"]:
            if name in aliases:
                projections[name] = embeddings
            else:
                matrix = np.load(self.root / spec["projections"][name],
                                 mmap_mode=self.mmap_mode)
                if len(matrix) != stop - start:
                    raise ValueError(
                        f"shard {index}: projection {name!r} has "
                        f"{len(matrix)} rows for {stop - start} drugs")
                projections[name] = matrix
        shard = CatalogShard(
            indices=np.arange(start, stop, dtype=np.int64),
            embeddings=embeddings, projections=projections)
        self._opened[index] = shard
        return shard

    def catalog(self, block_size: int | None = None) -> "MappedShardCatalog":
        """A screening catalog over the memory-mapped shards."""
        return MappedShardCatalog(self, block_size or self.block_size)

    # ------------------------------------------------------------------
    @classmethod
    def save(cls, path: str | Path, embeddings: np.ndarray,
             projections: dict[str, np.ndarray] | None = None,
             num_shards: int = 1, block_size: int = 1024,
             fingerprint: tuple | None = None,
             catalog_digest: str | None = None,
             quantize: str | None = None,
             sketch_factors: dict[str, np.ndarray] | None = None) -> Path:
        """Write a shard store under directory ``path``; returns the manifest.

        Rows are split into the same contiguous ranges the in-memory
        catalog's default layout uses (``np.array_split`` boundaries), so a
        reopened store screens shard-for-shard identically.  Projections
        whose matrix *is* the embedding matrix (the dot decoder's identity
        precompute) are recorded as aliases, not written twice.

        ``quantize="int8"`` stores every matrix as symmetric per-column-
        scaled int8 codes (scales ride the manifest), shrinking the store
        ~8x; a quantized store serves the *approximate* screening tier
        only — the prefilter streams int8 pages, the shortlist reranks
        against exact in-memory rows.  ``sketch_factors`` (the MLP
        prefilter's ``{"mean", "components"}``) are written alongside so a
        cold open can sketch queries without the original cache.
        """
        if quantize is not None and quantize not in QUANTIZATION_SCHEMES:
            raise ValueError(f"quantize must be one of "
                             f"{QUANTIZATION_SCHEMES} or None, "
                             f"got {quantize!r}")
        embeddings = np.asarray(embeddings)
        if embeddings.ndim != 2 or not len(embeddings):
            raise ValueError("embeddings must be a non-empty "
                             "(num_drugs, dim) matrix")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        projections = dict(projections or {})
        for name, matrix in projections.items():
            if not _NAME_RE.match(name):
                raise ValueError(f"projection name {name!r} is not a valid "
                                 f"file-name component")
            if len(matrix) != len(embeddings):
                raise ValueError(
                    f"projection {name!r} has {len(matrix)} rows for "
                    f"{len(embeddings)} catalog drugs")
        aliases = sorted(name for name, matrix in projections.items()
                         if matrix is embeddings)

        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        quantization = None
        stored_emb, stored_proj = embeddings, projections
        if quantize == "int8":
            stored_emb, emb_scales = quantize_int8(embeddings)
            stored_proj, proj_scales = {}, {}
            for name, matrix in projections.items():
                if name in aliases:
                    stored_proj[name] = stored_emb
                    continue
                stored_proj[name], scales = quantize_int8(matrix)
                proj_scales[name] = scales.tolist()
            quantization = {"scheme": "int8",
                            "scales": {"embeddings": emb_scales.tolist(),
                                       "projections": proj_scales}}
        chunks = [c for c in np.array_split(
            np.arange(len(embeddings), dtype=np.int64), num_shards)
            if len(c)]
        # Every array is written atomically (temp + os.replace) and its
        # CRC32 recorded, so a crash mid-save can never leave readable but
        # half-written shard files, and a torn file written any other way
        # is detected on open instead of silently mis-scoring.
        checksums: dict[str, int] = {}
        shard_specs = []
        for i, chunk in enumerate(chunks):
            lo, hi = int(chunk[0]), int(chunk[-1]) + 1
            emb_file = f"shard_{i:05d}.emb.npy"
            checksums[emb_file] = _atomic_save(root, emb_file,
                                               stored_emb[lo:hi])
            proj_files = {}
            for name in projections:
                if name in aliases:
                    continue
                proj_file = f"shard_{i:05d}.proj.{name}.npy"
                checksums[proj_file] = _atomic_save(
                    root, proj_file, stored_proj[name][lo:hi])
                proj_files[name] = proj_file
            shard_specs.append({"start": lo, "stop": hi,
                                "embeddings": emb_file,
                                "projections": proj_files})
        sketch_spec = None
        if sketch_factors is not None:
            sketch_spec = {"mean": "sketch.mean.npy",
                           "components": "sketch.components.npy"}
            if sketch_factors.get("std") is not None:
                sketch_spec["std"] = "sketch.std.npy"
            for key, file_name in sketch_spec.items():
                checksums[file_name] = _atomic_save(root, file_name,
                                                    sketch_factors[key])
        manifest = {
            "format": STORE_FORMAT,
            "fingerprint": (_fingerprint_to_json(fingerprint)
                            if fingerprint is not None else None),
            "catalog_digest": catalog_digest,
            "num_drugs": len(embeddings),
            "embed_dim": int(embeddings.shape[1]),
            "dtype": str(embeddings.dtype),
            "block_size": block_size,
            "projections": sorted(projections),
            "aliases": aliases,
            "shards": shard_specs,
            "quantization": quantization,
            "sketch_factors": sketch_spec,
            "checksums": checksums,
        }
        manifest_path = root / MANIFEST_NAME
        # The manifest is written last and renamed into place atomically:
        # a crash at any earlier point leaves either no manifest or the
        # previous complete one — never a manifest pointing at missing or
        # partial shard files.
        tmp = manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        tmp.replace(manifest_path)
        return manifest_path


class MappedShardCatalog(ShardedEmbeddingCatalog):
    """A :class:`ShardedEmbeddingCatalog` whose rows live on disk.

    Shards are ``np.memmap`` views opened from a :class:`ShardStore`; the
    inherited :meth:`screen` streams them through the shared blockwise
    top-k core, so exact-mode results are bitwise-identical to the
    in-memory catalog while peak heap memory stays O(block + k).  There is
    deliberately no materialized global embedding/projection matrix — use
    :meth:`rows` to gather specific rows (the approximate-mode rerank
    does), which reads only the pages those rows live on.
    """

    def __init__(self, store: ShardStore, block_size: int):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self._store = store
        self._shards = [store.open_shard(i)
                        for i in range(store.num_shards)]
        self._starts = np.array([int(s.indices[0]) for s in self._shards],
                                dtype=np.int64)
        self._embeddings = None
        self._projections = None
        self.block_size = block_size

    @property
    def store(self) -> ShardStore:
        return self._store

    @property
    def num_drugs(self) -> int:
        return self._store.num_drugs

    @property
    def projections(self) -> dict[str, np.ndarray]:
        raise RuntimeError("an out-of-core catalog never materializes a "
                           "global projection matrix; use rows()")

    def rows(self, indices: Sequence[int] | np.ndarray
             ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Gather ``(embeddings, projections)`` rows by global catalog index.

        Rows come back as ordinary in-memory arrays (tiny — callers gather
        shortlists, not catalogs), bitwise-equal to the in-memory catalog's
        gather for the same indices.
        """
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        if indices.size and (indices.min() < 0
                             or indices.max() >= self.num_drugs):
            raise IndexError(f"row index out of catalog range "
                             f"[0, {self.num_drugs})")
        template = self._shards[0]
        emb = np.empty((len(indices), self._store.embed_dim),
                       dtype=template.embeddings.dtype)
        proj = {name: np.empty((len(indices),) + matrix.shape[1:],
                               dtype=matrix.dtype)
                for name, matrix in template.projections.items()}
        shard_of = np.searchsorted(self._starts, indices, side="right") - 1
        for sid in np.unique(shard_of):
            shard = self._shards[sid]
            mask = shard_of == sid
            local = indices[mask] - int(shard.indices[0])
            emb[mask] = shard.embeddings[local]
            for name, matrix in shard.projections.items():
                proj[name][mask] = matrix[local]
        return emb, proj
