"""Memory-mapped shard store: the out-of-core tier of the screening engine.

A :class:`ShardStore` persists a sharded catalog — the embedding rows plus
the precomputed candidate-side decoder projections of each shard — as raw
``.npy`` files next to a JSON manifest:

    store_dir/
      manifest.json                     # the current committed version
      manifest.v000000.json             # retained snapshot of version 0
      manifest.v000001.json             # retained snapshot of version 1
      shard_00000.emb.npy               # shard 0's embedding rows
      shard_00000.proj.<name>.npy       # shard 0's rows of projection <name>
      seg_v000001.emb.npy               # rows appended by version 1
      journal.json                      # write-ahead intent (only mid-commit)
      orphans/                          # quarantined debris from dead writers

The manifest records the contiguous row range of every shard, the weight
fingerprint and catalog digest the arrays were computed under (so a loader
can *prove* the store still matches the model and drug list it is about to
serve), and the projection names — including which of them alias the
embedding matrix itself (the dot decoder's identity precompute), which are
never written twice.

The store is a **versioned, crash-consistent, append-only catalog**:

- :meth:`append` lands new drugs as segment files without touching a byte
  of any existing shard file; :meth:`compact` merges accumulated segments
  into full shards; :meth:`rollback` re-commits any retained version's
  content as a new version; :meth:`gc` drops old retained versions.
- Every mutation is staged through a write-ahead intent journal
  (``journal.json``), then data files land via atomic temp+rename writes,
  then a retained ``manifest.v{N}.json`` snapshot, and finally one atomic
  ``os.replace`` of ``manifest.json`` **commits** the new version.  Catalog
  versions increase monotonically — a rollback is a new version whose
  content equals an old one, so readers never see version numbers reused.
- Opening with ``recover=True`` (what :meth:`DDIScreeningService.open_shards
  <repro.serving.service.DDIScreeningService.open_shards>` and
  ``from_store`` do) repairs any torn state a dead writer left behind:
  a completed-but-unacknowledged commit is tidied, a fully-staged commit is
  rolled forward, and anything else is rolled back with the dead writer's
  segment files quarantined under ``orphans/``.  Plain readers (pool
  workers, remote workers) open with the default ``recover=False`` and only
  ever see ``manifest.json`` — always a complete committed state — so a
  live writer's in-flight journal is never disturbed by a concurrent open.
- Crash-consistency is *driven*, not hoped for: every journal/segment/
  manifest write is bracketed by a named crash point (``self.crash_policy``
  — a :class:`~repro.serving.faults.CrashPolicy`), and the chaos tests kill
  the writer at each point and assert recovery lands on a committed version
  whose screens are bitwise-identical to that version's engine.

Reopening goes through ``np.load(..., mmap_mode="r")``: shard arrays become
read-only memory maps, so a screening pass touches O(block) file pages at a
time and its heap allocations stay O(block + k) — a catalog (projections
included) far larger than RAM streams through the engine.  Because
:class:`MappedShardCatalog` feeds those maps through the *same*
:func:`~repro.serving.shards.screen_shard` /
:func:`~repro.serving.shards.finalize_screen` code as the in-memory
:class:`~repro.serving.shards.ShardedEmbeddingCatalog`, results are
bitwise-identical to the in-memory engine for every block size and shard
count.  Worker processes (:mod:`repro.serving.executor`) open individual
shards by manifest path — no array ever crosses a process boundary.
"""

from __future__ import annotations

import json
import re
import threading
import zlib
from pathlib import Path
from typing import Sequence

import numpy as np

from .cache import _fingerprint_from_json, _fingerprint_to_json
from .faults import CrashPolicy
from .precision import QUANTIZATION_SCHEMES, quantize_int8
from .shards import CatalogShard, ShardedEmbeddingCatalog

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.json"
ORPHAN_DIR = "orphans"
STORE_FORMAT = "repro.serving.shard-store/v1"
JOURNAL_FORMAT = "repro.serving.shard-journal/v1"
_NAME_RE = re.compile(r"^[A-Za-z0-9_-]+$")
_RETAINED_RE = re.compile(r"^manifest\.v(\d{6})\.json$")
_CRC_CHUNK = 1 << 20  # 1 MB read chunks keep verification O(1) in heap


class ShardIntegrityError(ValueError):
    """A shard file's bytes no longer match its manifest CRC32 checksum.

    Raised instead of serving silently mis-scored results from a torn or
    corrupted ``.npy``; the offending shard index lands in
    :attr:`ShardStore.quarantined` so callers (the remote worker, the
    failover client) can route around it.
    """


def _crc32_file(path: Path) -> int:
    """CRC32 of a file's bytes, streamed in chunks (O(1) heap)."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CRC_CHUNK)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def _atomic_save(root: Path, name: str, array: np.ndarray) -> int:
    """Write ``root/name`` as ``.npy`` via temp file + ``os.replace``.

    Readers can never observe a half-written array: they see either the
    old file or the new one.  Returns the CRC32 of the written bytes for
    the manifest's integrity record.
    """
    tmp = root / (name + ".tmp")
    with open(tmp, "wb") as handle:
        np.save(handle, array)
    crc = _crc32_file(tmp)
    tmp.replace(root / name)
    return crc


def _atomic_write_text(root: Path, name: str, payload: str) -> None:
    """Write ``root/name`` via temp file + ``os.replace`` (all-or-nothing)."""
    tmp = root / (name + ".tmp")
    tmp.write_text(payload)
    tmp.replace(root / name)


def _retained_name(version: int) -> str:
    """File name of the retained manifest snapshot for ``version``."""
    return f"manifest.v{int(version):06d}.json"


def _manifest_files(manifest: dict) -> set[str]:
    """Every data file a manifest references (shards + sketch factors)."""
    names: set[str] = set()
    for spec in manifest.get("shards", []):
        names.add(spec["embeddings"])
        names.update(spec["projections"].values())
    sketch = manifest.get("sketch_factors") or {}
    names.update(sketch.values())
    return names


def _validate_quantization(spec, embed_dim: int, projections: list[str],
                           aliases: list[str]) -> dict | None:
    """Coerce/validate the optional ``quantization`` manifest field.

    Returns ``None`` (not quantized) or ``{"scheme", "scales"}`` with the
    scale lists converted to float64 arrays.  Any structural problem —
    unknown scheme, missing/mis-typed scales, wrong widths — raises
    ``ValueError``, which best-effort openers treat as "no usable store".
    """
    if spec is None:
        return None
    if not isinstance(spec, dict):
        raise ValueError("quantization must be a mapping")
    scheme = spec.get("scheme")
    if scheme not in QUANTIZATION_SCHEMES:
        raise ValueError(f"unknown quantization scheme {scheme!r}; "
                         f"expected one of {QUANTIZATION_SCHEMES}")
    scales = spec.get("scales")
    if not isinstance(scales, dict) or "embeddings" not in scales \
            or not isinstance(scales.get("projections"), dict):
        raise ValueError("quantization.scales must map 'embeddings' and "
                         "'projections' to per-column scale lists")
    out = {"embeddings": np.asarray(scales["embeddings"],
                                    dtype=np.float64).reshape(-1)}
    if len(out["embeddings"]) != embed_dim:
        raise ValueError(
            f"quantization has {len(out['embeddings'])} embedding scales "
            f"for embed_dim {embed_dim}")
    proj_scales = {}
    for name in projections:
        if name in scales["projections"]:
            proj_scales[name] = np.asarray(scales["projections"][name],
                                           dtype=np.float64).reshape(-1)
    missing = set(projections) - set(proj_scales) - set(aliases)
    if missing:
        raise ValueError(f"quantization is missing scales for projections "
                         f"{sorted(missing)}")
    return {"scheme": scheme, "scales": {"embeddings": out["embeddings"],
                                         "projections": proj_scales}}


class ShardStore:
    """Disk layout + lazy memory-mapped access for one persisted catalog.

    ``ShardStore(path)`` opens an existing store (``path`` may be the store
    directory or the manifest file itself); :meth:`save` writes one.  Shards
    open lazily and are memoized per store instance, so a pool worker that
    is assigned shard *i* maps only shard *i*'s files.

    ``recover=True`` runs crash recovery before reading the manifest — only
    the catalog's *owner* (the serving process that mutates it) should pass
    it; concurrent readers must not, or they would roll back a live
    writer's in-flight journal.  The result of recovery, if any ran, is
    recorded in :attr:`recovered`.
    """

    def __init__(self, path: str | Path, mmap_mode: str | None = "r",
                 verify_checksums: bool = True, recover: bool = False):
        path = Path(path)
        if path.is_dir():
            path = path / MANIFEST_NAME
        self.path = path
        self.root = path.parent
        self.mmap_mode = mmap_mode
        self.verify_checksums = verify_checksums
        # Crash-injection hook for the chaos tests: when set, every
        # journal/segment/manifest write inside a mutation passes through
        # CrashPolicy.check, which may raise CrashPoint to simulate the
        # writer dying exactly there.
        self.crash_policy: CrashPolicy | None = None
        self.recovered: dict | None = None
        self._mutate_lock = threading.Lock()
        if recover:
            self.recovered = self.recover_dir(self.root)
        manifest = json.loads(path.read_text())
        self._install(manifest)

    # ------------------------------------------------------------------
    def _install(self, manifest: dict, *, keep_opened: bool = False,
                 keep_quarantine: bool = False) -> None:
        """Adopt ``manifest`` as this store's current in-memory state.

        Called from the constructor and after every successful disk commit
        — never before one, so a mutation that dies mid-commit (including
        a simulated :class:`~repro.serving.faults.CrashPoint`) leaves the
        in-memory store exactly as it was.  Any mutation invalidates the
        entire verify memo: checksum results proven against the previous
        catalog state say nothing about the new one.
        """
        if not isinstance(manifest, dict):
            raise ValueError(f"{self.path} is not a shard-store manifest")
        if manifest.get("format") != STORE_FORMAT:
            raise ValueError(
                f"{self.path} is not a shard-store manifest "
                f"(format={manifest.get('format')!r})")
        missing = {"num_drugs", "embed_dim", "block_size", "projections",
                   "aliases", "shards"} - manifest.keys()
        if missing:
            raise ValueError(f"{self.path} is missing manifest keys "
                             f"{sorted(missing)}")
        # Coerce the scalar fields eagerly so any malformed manifest —
        # whatever the corruption — fails here as a ValueError, which
        # best-effort openers (DDIScreeningService.open_shards) treat as
        # "no usable store" rather than crashing.
        try:
            num_drugs = int(manifest["num_drugs"])
            embed_dim = int(manifest["embed_dim"])
            block_size = int(manifest["block_size"])
            version = int(manifest.get("version", 0))
            if not isinstance(manifest["shards"], list):
                raise TypeError
            fingerprint = manifest.get("fingerprint")
            fingerprint = (_fingerprint_from_json(fingerprint)
                           if fingerprint is not None else None)
            quantization = _validate_quantization(
                manifest.get("quantization"), embed_dim,
                list(manifest["projections"]), list(manifest["aliases"]))
            checksums = manifest.get("checksums")
            if checksums is not None and not isinstance(checksums, dict):
                raise TypeError
            checksums = ({str(name): int(crc)
                          for name, crc in checksums.items()}
                         if checksums else None)
        except (TypeError, ValueError, KeyError) as error:
            raise ValueError(
                f"{self.path} has malformed manifest fields") from error
        self.manifest = manifest
        self._num_drugs = num_drugs
        self._embed_dim = embed_dim
        self._block_size = block_size
        self.version = version
        self.fingerprint = fingerprint
        self._quantization = quantization
        self._checksums = checksums
        self.catalog_digest = manifest.get("catalog_digest")
        # Shard indices whose files failed CRC verification — detected
        # rather than served; callers route around them (failover) or
        # re-save the store.
        if not keep_quarantine:
            self.quarantined: set[int] = set()
        self._verified: set[str] = set()
        if not keep_opened:
            self._opened: dict[int, CatalogShard] = {}

    def _crash(self, point: str) -> None:
        policy = self.crash_policy
        if policy is not None:
            policy.check(point)

    # ------------------------------------------------------------------
    @property
    def num_drugs(self) -> int:
        return self._num_drugs

    @property
    def embed_dim(self) -> int:
        return self._embed_dim

    @property
    def num_shards(self) -> int:
        return len(self.manifest["shards"])

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def projection_names(self) -> list[str]:
        return list(self.manifest["projections"])

    @property
    def quantization(self) -> str | None:
        """The quantization scheme the shard files use (None = exact)."""
        return self._quantization["scheme"] if self._quantization else None

    @property
    def is_quantized(self) -> bool:
        return self._quantization is not None

    def scales(self, name: str | None = None) -> np.ndarray:
        """Per-column dequantization scales for ``name`` (None = embeddings).

        Alias projections (rows that *are* the embedding matrix) resolve
        to the embedding scales.
        """
        if self._quantization is None:
            raise ValueError("store is not quantized")
        scales = self._quantization["scales"]
        if name is None or name in self.manifest["aliases"]:
            return scales["embeddings"]
        return scales["projections"][name]

    @property
    def has_checksums(self) -> bool:
        """Whether the manifest carries per-file CRC32 checksums."""
        return self._checksums is not None

    def _verify_file(self, name: str, shard: int | None = None) -> None:
        """CRC-check one store file (memoized); quarantine on mismatch.

        A manifest without checksums (pre-integrity stores) skips
        verification silently — there is nothing to check against.  The
        memo lives only until the next mutation: any append/compaction/
        rollback/reload clears it, so re-verify re-reads the bytes.
        """
        if (not self.verify_checksums or self._checksums is None
                or name in self._verified):
            return
        expected = self._checksums.get(name)
        if expected is None:
            return
        actual = _crc32_file(self.root / name)
        if actual != expected:
            if shard is not None:
                self.quarantined.add(shard)
            raise ShardIntegrityError(
                f"{self.root / name}: CRC32 {actual:#010x} does not match "
                f"manifest checksum {expected:#010x} — shard file is torn "
                f"or corrupt" + (f" (shard {shard} quarantined)"
                                 if shard is not None else ""))
        self._verified.add(name)

    def _shard_files(self, index: int) -> list[str]:
        spec = self.manifest["shards"][index]
        return [spec["embeddings"], *spec["projections"].values()]

    def verify(self, strict: bool = False) -> list[int]:
        """CRC-check every shard file now; returns the bad shard indices.

        Bad shards are quarantined.  ``strict=True`` raises
        :class:`ShardIntegrityError` on the first mismatch instead of
        collecting.  A manifest without checksums verifies vacuously.
        """
        bad: list[int] = []
        for index in range(self.num_shards):
            try:
                for name in self._shard_files(index):
                    self._verify_file(name, shard=index)
            except ShardIntegrityError:
                if strict:
                    raise
                bad.append(index)
        return bad

    def sketch_factors(self) -> dict[str, np.ndarray] | None:
        """The prefilter sketch factors saved with the store, if any."""
        spec = self.manifest.get("sketch_factors")
        if not spec:
            return None
        for name in spec.values():
            self._verify_file(name)
        factors = {"mean": np.load(self.root / spec["mean"]),
                   "components": np.load(self.root / spec["components"])}
        if spec.get("std"):
            factors["std"] = np.load(self.root / spec["std"])
        return factors

    def nbytes(self) -> int:
        """Total bytes of the shard files (embeddings + projections)."""
        spec_files = [self.root / spec["embeddings"]
                      for spec in self.manifest["shards"]]
        spec_files += [self.root / name
                       for spec in self.manifest["shards"]
                       for name in spec["projections"].values()]
        return sum(f.stat().st_size for f in spec_files)

    # ------------------------------------------------------------------
    def open_shard(self, index: int) -> CatalogShard:
        """Memory-map one shard's arrays (memoized per store instance)."""
        shard = self._opened.get(index)
        if shard is not None:
            return shard
        spec = self.manifest["shards"][index]
        start, stop = int(spec["start"]), int(spec["stop"])
        # Integrity first: a torn/corrupt file must be *detected* (and the
        # shard quarantined), never silently mis-scored.  The CRC pass
        # streams the file in chunks, so heap stays O(1) even for shards
        # far larger than RAM.
        for name in self._shard_files(index):
            self._verify_file(name, shard=index)
        embeddings = np.load(self.root / spec["embeddings"],
                             mmap_mode=self.mmap_mode)
        if embeddings.shape != (stop - start, self.embed_dim):
            raise ValueError(
                f"shard {index}: {spec['embeddings']} has shape "
                f"{embeddings.shape}, manifest says "
                f"({stop - start}, {self.embed_dim})")
        aliases = set(self.manifest["aliases"])
        projections = {}
        for name in self.manifest["projections"]:
            if name in aliases:
                projections[name] = embeddings
            else:
                matrix = np.load(self.root / spec["projections"][name],
                                 mmap_mode=self.mmap_mode)
                if len(matrix) != stop - start:
                    raise ValueError(
                        f"shard {index}: projection {name!r} has "
                        f"{len(matrix)} rows for {stop - start} drugs")
                projections[name] = matrix
        shard = CatalogShard(
            indices=np.arange(start, stop, dtype=np.int64),
            embeddings=embeddings, projections=projections)
        self._opened[index] = shard
        return shard

    def catalog(self, block_size: int | None = None) -> "MappedShardCatalog":
        """A screening catalog over the memory-mapped shards."""
        return MappedShardCatalog(self, block_size or self.block_size)

    # ------------------------------------------------------------------
    # Versioned mutation protocol
    # ------------------------------------------------------------------
    def _commit(self, op: str, new_manifest: dict,
                data_files: list[tuple[str, np.ndarray]]) -> None:
        """Stage and atomically commit ``new_manifest`` as a new version.

        The write-ahead protocol, with a named crash point after every
        durable step (``{op}.begin`` fires before the first one):

        1. ``journal.json`` — the intent: target version, the retained
           manifest name, and every data file about to be written.  From
           here a dead writer is recoverable: either all listed files plus
           the retained manifest made it (roll forward) or they did not
           (roll back + quarantine).
        2. each data file, via atomic temp+rename, CRC recorded;
        3. the retained ``manifest.v{N}.json`` snapshot;
        4. **commit point** — one atomic ``os.replace`` of
           ``manifest.json``;
        5. journal deleted (a crash between 4 and 5 is already committed —
           recovery just tidies the journal).

        The in-memory store is untouched; callers :meth:`_install` the new
        manifest only after this returns.
        """
        root = self.root
        target_version = int(new_manifest["version"])
        retained_name = _retained_name(target_version)
        self._crash(f"{op}.begin")
        journal = {
            "format": JOURNAL_FORMAT,
            "op": op,
            "target_version": target_version,
            "manifest": retained_name,
            "files": [name for name, _ in data_files],
        }
        _atomic_write_text(root, JOURNAL_NAME,
                           json.dumps(journal, indent=2, sort_keys=True))
        self._crash(f"{op}.journal")
        checksums = dict(new_manifest.get("checksums") or {})
        for name, array in data_files:
            checksums[name] = _atomic_save(root, name, array)
            self._crash(f"{op}.file:{name}")
        new_manifest["checksums"] = checksums
        payload = json.dumps(new_manifest, indent=2, sort_keys=True)
        _atomic_write_text(root, retained_name, payload)
        self._crash(f"{op}.manifest")
        _atomic_write_text(root, MANIFEST_NAME, payload)
        self._crash(f"{op}.commit")
        (root / JOURNAL_NAME).unlink()
        self._crash(f"{op}.done")

    def _copy_manifest(self) -> dict:
        """A mutation-safe deep copy of the current manifest."""
        return json.loads(json.dumps(self.manifest))

    def _require_exact(self, what: str) -> None:
        if self.is_quantized:
            raise ValueError(
                f"an int8-quantized store is a frozen snapshot; {what} "
                f"requires an exact store (re-save with quantize=None)")

    def append(self, embeddings: np.ndarray,
               projections: dict[str, np.ndarray] | None = None,
               catalog_digest: str | None = None) -> int:
        """Append new catalog rows as a segment; returns the new version.

        The segment lands as fresh ``seg_v{N}.*.npy`` files — no existing
        shard file is rewritten or even reopened, so the cost of an append
        is O(rows appended), independent of catalog size, and every byte
        of the old catalog stays bitwise-identical (retained versions keep
        referencing the same files).  Projections must cover every
        non-alias projection the manifest declares; alias entries (the dot
        decoder's identity precompute) are accepted and ignored.
        """
        with self._mutate_lock:
            self._require_exact("append")
            embeddings = np.asarray(embeddings)
            if embeddings.ndim != 2 or not len(embeddings):
                raise ValueError("appended embeddings must be a non-empty "
                                 "(rows, dim) matrix")
            if embeddings.shape[1] != self._embed_dim:
                raise ValueError(
                    f"appended rows have dim {embeddings.shape[1]}, store "
                    f"holds embed_dim {self._embed_dim}")
            dtype = self.manifest.get("dtype")
            if dtype is not None and str(embeddings.dtype) != dtype:
                raise ValueError(
                    f"appended rows have dtype {embeddings.dtype}, store "
                    f"holds {dtype}")
            projections = dict(projections or {})
            expected = set(self.manifest["projections"])
            aliases = set(self.manifest["aliases"])
            extra = set(projections) - expected
            if extra:
                raise ValueError(f"unknown projections {sorted(extra)}; "
                                 f"store declares {sorted(expected)}")
            missing = (expected - aliases) - set(projections)
            if missing:
                raise ValueError(f"append is missing projections "
                                 f"{sorted(missing)}")
            for name in sorted(expected - aliases):
                if len(projections[name]) != len(embeddings):
                    raise ValueError(
                        f"projection {name!r} has {len(projections[name])} "
                        f"rows for {len(embeddings)} appended drugs")
            new_version = self.version + 1
            start, stop = self._num_drugs, self._num_drugs + len(embeddings)
            emb_file = f"seg_v{new_version:06d}.emb.npy"
            data_files: list[tuple[str, np.ndarray]] = [(emb_file,
                                                         embeddings)]
            proj_files: dict[str, str] = {}
            for name in sorted(expected - aliases):
                file_name = f"seg_v{new_version:06d}.proj.{name}.npy"
                proj_files[name] = file_name
                data_files.append((file_name,
                                   np.asarray(projections[name])))
            new_manifest = self._copy_manifest()
            new_manifest["version"] = new_version
            new_manifest["num_drugs"] = stop
            if catalog_digest is not None:
                new_manifest["catalog_digest"] = catalog_digest
            new_manifest["shards"] = new_manifest["shards"] + [
                {"start": start, "stop": stop, "embeddings": emb_file,
                 "projections": proj_files}]
            self._commit("append", new_manifest, data_files)
            # Existing shard indices (and their mmaps) are untouched by an
            # append, so the open-shard memo survives; the verify memo
            # never does (satellite of the crash-safety contract).
            self._install(new_manifest, keep_opened=True,
                          keep_quarantine=True)
            return new_version

    def compact(self, num_shards: int | None = None,
                catalog_digest: str | None = None) -> int:
        """Merge accumulated segments into full shards; returns new version.

        Rewrites the catalog's rows into ``num_shards`` contiguous shards
        (default: as many shards as needed so none exceeds the largest
        current shard's row count) under the same journal + atomic-commit
        protocol as :meth:`append`.  Old files are *not* deleted — retained
        versions still reference them; :meth:`gc` reclaims them once their
        versions are dropped.  Readers pinned to an old version keep
        serving from their existing memory maps.
        """
        with self._mutate_lock:
            self._require_exact("compact")
            if num_shards is None:
                largest = max(int(spec["stop"]) - int(spec["start"])
                              for spec in self.manifest["shards"])
                num_shards = max(1, -(-self._num_drugs // largest))
            if num_shards < 1:
                raise ValueError("num_shards must be >= 1")
            aliases = set(self.manifest["aliases"])
            names = [name for name in self.manifest["projections"]
                     if name not in aliases]
            emb_parts, proj_parts = [], {name: [] for name in names}
            for index in range(self.num_shards):
                shard = self.open_shard(index)
                emb_parts.append(np.asarray(shard.embeddings))
                for name in names:
                    proj_parts[name].append(
                        np.asarray(shard.projections[name]))
            embeddings = np.concatenate(emb_parts, axis=0)
            merged = {name: np.concatenate(parts, axis=0)
                      for name, parts in proj_parts.items()}
            new_version = self.version + 1
            chunks = [c for c in np.array_split(
                np.arange(len(embeddings), dtype=np.int64), num_shards)
                if len(c)]
            data_files: list[tuple[str, np.ndarray]] = []
            shard_specs = []
            for i, chunk in enumerate(chunks):
                lo, hi = int(chunk[0]), int(chunk[-1]) + 1
                emb_file = f"seg_v{new_version:06d}_{i:05d}.emb.npy"
                data_files.append((emb_file, embeddings[lo:hi]))
                proj_files = {}
                for name in names:
                    file_name = (f"seg_v{new_version:06d}_{i:05d}"
                                 f".proj.{name}.npy")
                    data_files.append((file_name, merged[name][lo:hi]))
                    proj_files[name] = file_name
                shard_specs.append({"start": lo, "stop": hi,
                                    "embeddings": emb_file,
                                    "projections": proj_files})
            new_manifest = self._copy_manifest()
            new_manifest["version"] = new_version
            new_manifest["shards"] = shard_specs
            if catalog_digest is not None:
                new_manifest["catalog_digest"] = catalog_digest
            self._commit("compact", new_manifest, data_files)
            self._install(new_manifest)
            return new_version

    def rollback(self, version: int) -> int:
        """Re-commit a retained version's content as a *new* version.

        Versions stay monotonic — a rollback never reuses a version
        number, it creates a fresh one whose manifest equals the target's
        (append-only data files are shared, nothing is copied).  The
        target must still be retained (see :meth:`versions`) and all its
        data files present (not :meth:`gc`-ed).
        """
        with self._mutate_lock:
            version = int(version)
            retained = self.root / _retained_name(version)
            if not retained.exists():
                raise ValueError(
                    f"version {version} is not retained (have "
                    f"{self.versions()}); cannot roll back")
            target = json.loads(retained.read_text())
            if not isinstance(target, dict) \
                    or target.get("format") != STORE_FORMAT:
                raise ValueError(f"{retained} is not a shard-store manifest")
            missing = [name for name in sorted(_manifest_files(target))
                       if not (self.root / name).exists()]
            if missing:
                raise ValueError(
                    f"version {version} references garbage-collected files "
                    f"{missing}; cannot roll back")
            new_version = self.version + 1
            new_manifest = json.loads(json.dumps(target))
            new_manifest["version"] = new_version
            self._commit("rollback", new_manifest, [])
            self._install(new_manifest)
            return new_version

    def versions(self) -> list[int]:
        """Retained catalog versions, ascending (rollback targets)."""
        found = []
        for path in self.root.glob("manifest.v*.json"):
            match = _RETAINED_RE.match(path.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def manifest_for(self, version: int) -> dict:
        """The retained manifest snapshot of ``version``."""
        retained = self.root / _retained_name(int(version))
        if not retained.exists():
            raise ValueError(f"version {version} is not retained "
                             f"(have {self.versions()})")
        return json.loads(retained.read_text())

    def gc(self, keep: int = 2) -> list[str]:
        """Drop old retained versions and their unreferenced data files.

        Keeps the newest ``keep`` retained manifests (the current version
        is always kept), then deletes any ``.npy`` in the store root that
        no surviving manifest references.  Deliberately journal-free but
        crash-safe by *ordering*: manifests are deleted before data files,
        so a crash can only leak unreferenced files — which the next
        :meth:`gc` reclaims — never break a referenced version.  Readers
        pinned to a dropped version keep serving: their memory maps hold
        the deleted files open (POSIX unlink semantics).
        """
        with self._mutate_lock:
            if keep < 1:
                raise ValueError("keep must be >= 1")
            if (self.root / JOURNAL_NAME).exists():
                raise RuntimeError(
                    "store has an unresolved intent journal (crashed "
                    "writer?); recover before garbage-collecting")
            versions = self.versions()
            survivors = set(versions[-keep:]) | {self.version}
            deleted: list[str] = []
            for version in versions:
                if version in survivors:
                    continue
                path = self.root / _retained_name(version)
                path.unlink()
                deleted.append(path.name)
            referenced = _manifest_files(self.manifest)
            for version in sorted(survivors):
                path = self.root / _retained_name(version)
                if not path.exists():
                    continue
                try:
                    referenced |= _manifest_files(json.loads(
                        path.read_text()))
                except (ValueError, TypeError, KeyError):
                    continue
            for path in sorted(self.root.glob("*.npy")):
                if path.name not in referenced:
                    path.unlink()
                    deleted.append(path.name)
            self._verified = set()
            return deleted

    def reload(self) -> int:
        """Re-read ``manifest.json`` from disk; returns the version.

        What a remote worker does when the client reports version skew:
        the committed manifest may have moved on since this process opened
        it.  All memos are dropped — shard indices may have changed.
        """
        with self._mutate_lock:
            manifest = json.loads((self.root / MANIFEST_NAME).read_text())
            self._install(manifest)
            return self.version

    # ------------------------------------------------------------------
    @staticmethod
    def recover_dir(root: str | Path) -> dict:
        """Repair a store directory a dead writer may have left torn.

        Returns a report ``{"action", "version", "orphans", "swept"}``:

        - ``action=None`` — no journal, nothing to do (``swept`` may still
          list deleted ``*.tmp`` debris from torn atomic writes);
        - ``"completed"`` — the commit finished before the crash, only the
          journal needed tidying;
        - ``"roll-forward"`` — every journaled file and the retained
          manifest landed intact (CRC-verified), so the interrupted commit
          is finished with the same atomic rename the writer would have
          done;
        - ``"roll-back"`` — the staged state is incomplete; the dead
          writer's files are quarantined under ``orphans/`` (named in
          ``orphans``), the partial retained manifest deleted, and the
          journal dropped, leaving the previous committed version current.

        Must only run in the catalog owner's process: a concurrent reader
        running this against a *live* writer's journal would roll back an
        in-flight commit.
        """
        root = Path(root)
        report: dict = {"action": None, "version": None, "orphans": [],
                        "swept": []}
        for tmp in sorted(root.glob("*.tmp")):
            tmp.unlink()
            report["swept"].append(tmp.name)
        journal_path = root / JOURNAL_NAME
        if not journal_path.exists():
            return report
        try:
            journal = json.loads(journal_path.read_text())
            target = int(journal["target_version"])
            retained_name = str(journal["manifest"])
            files = [str(name) for name in journal.get("files", [])]
        except (ValueError, TypeError, KeyError):
            # The journal is written atomically, so an unreadable one is
            # foreign damage; with no intent to interpret, dropping it is
            # the only safe move (manifest.json is still a committed
            # state).
            journal_path.unlink()
            report["action"] = "roll-back"
            return report
        current_version = -1
        manifest_path = root / MANIFEST_NAME
        if manifest_path.exists():
            try:
                current = json.loads(manifest_path.read_text())
                current_version = int(current.get("version", 0))
            except (ValueError, TypeError):
                pass
        if current_version >= target:
            # The atomic rename (the commit point) happened; the crash was
            # between commit and journal cleanup.
            journal_path.unlink()
            report.update(action="completed", version=current_version)
            return report
        retained = root / retained_name
        complete = False
        if retained.exists():
            try:
                staged = json.loads(retained.read_text())
                checksums = staged.get("checksums") or {}
                complete = (
                    isinstance(staged, dict)
                    and staged.get("format") == STORE_FORMAT
                    and int(staged.get("version", -1)) == target
                    and all((root / name).exists()
                            and _crc32_file(root / name)
                            == int(checksums.get(name, -1))
                            for name in files))
            except (ValueError, TypeError, KeyError, OSError):
                complete = False
        if complete:
            # Everything the journal promised is durable and CRC-clean;
            # finish the commit exactly as the writer would have.
            _atomic_write_text(root, MANIFEST_NAME, retained.read_text())
            journal_path.unlink()
            report.update(action="roll-forward", version=target)
            return report
        # Incomplete staging: quarantine the dead writer's debris so the
        # previous committed version serves untainted.
        orphan_dir = root / ORPHAN_DIR
        for name in files:
            src = root / name
            if src.exists():
                orphan_dir.mkdir(exist_ok=True)
                src.replace(orphan_dir / name)
                report["orphans"].append(name)
        if retained.exists():
            retained.unlink()
        journal_path.unlink()
        report.update(action="roll-back",
                      version=current_version if current_version >= 0
                      else None)
        return report

    # ------------------------------------------------------------------
    @classmethod
    def save(cls, path: str | Path, embeddings: np.ndarray,
             projections: dict[str, np.ndarray] | None = None,
             num_shards: int = 1, block_size: int = 1024,
             fingerprint: tuple | None = None,
             catalog_digest: str | None = None,
             quantize: str | None = None,
             sketch_factors: dict[str, np.ndarray] | None = None) -> Path:
        """Write a shard store under directory ``path``; returns the manifest.

        Rows are split into the same contiguous ranges the in-memory
        catalog's default layout uses (``np.array_split`` boundaries), so a
        reopened store screens shard-for-shard identically.  Projections
        whose matrix *is* the embedding matrix (the dot decoder's identity
        precompute) are recorded as aliases, not written twice.

        The store starts at catalog version 0, with the version-0 manifest
        retained alongside ``manifest.json`` so later :meth:`rollback`
        calls can restore the initial catalog.

        ``quantize="int8"`` stores every matrix as symmetric per-column-
        scaled int8 codes (scales ride the manifest), shrinking the store
        ~8x; a quantized store serves the *approximate* screening tier
        only — the prefilter streams int8 pages, the shortlist reranks
        against exact in-memory rows.  ``sketch_factors`` (the MLP
        prefilter's ``{"mean", "components"}``) are written alongside so a
        cold open can sketch queries without the original cache.
        """
        if quantize is not None and quantize not in QUANTIZATION_SCHEMES:
            raise ValueError(f"quantize must be one of "
                             f"{QUANTIZATION_SCHEMES} or None, "
                             f"got {quantize!r}")
        embeddings = np.asarray(embeddings)
        if embeddings.ndim != 2 or not len(embeddings):
            raise ValueError("embeddings must be a non-empty "
                             "(num_drugs, dim) matrix")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        projections = dict(projections or {})
        for name, matrix in projections.items():
            if not _NAME_RE.match(name):
                raise ValueError(f"projection name {name!r} is not a valid "
                                 f"file-name component")
            if len(matrix) != len(embeddings):
                raise ValueError(
                    f"projection {name!r} has {len(matrix)} rows for "
                    f"{len(embeddings)} catalog drugs")
        aliases = sorted(name for name, matrix in projections.items()
                         if matrix is embeddings)

        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        quantization = None
        stored_emb, stored_proj = embeddings, projections
        if quantize == "int8":
            stored_emb, emb_scales = quantize_int8(embeddings)
            stored_proj, proj_scales = {}, {}
            for name, matrix in projections.items():
                if name in aliases:
                    stored_proj[name] = stored_emb
                    continue
                stored_proj[name], scales = quantize_int8(matrix)
                proj_scales[name] = scales.tolist()
            quantization = {"scheme": "int8",
                            "scales": {"embeddings": emb_scales.tolist(),
                                       "projections": proj_scales}}
        chunks = [c for c in np.array_split(
            np.arange(len(embeddings), dtype=np.int64), num_shards)
            if len(c)]
        # Every array is written atomically (temp + os.replace) and its
        # CRC32 recorded, so a crash mid-save can never leave readable but
        # half-written shard files, and a torn file written any other way
        # is detected on open instead of silently mis-scoring.
        checksums: dict[str, int] = {}
        shard_specs = []
        for i, chunk in enumerate(chunks):
            lo, hi = int(chunk[0]), int(chunk[-1]) + 1
            emb_file = f"shard_{i:05d}.emb.npy"
            checksums[emb_file] = _atomic_save(root, emb_file,
                                               stored_emb[lo:hi])
            proj_files = {}
            for name in projections:
                if name in aliases:
                    continue
                proj_file = f"shard_{i:05d}.proj.{name}.npy"
                checksums[proj_file] = _atomic_save(
                    root, proj_file, stored_proj[name][lo:hi])
                proj_files[name] = proj_file
            shard_specs.append({"start": lo, "stop": hi,
                                "embeddings": emb_file,
                                "projections": proj_files})
        sketch_spec = None
        if sketch_factors is not None:
            sketch_spec = {"mean": "sketch.mean.npy",
                           "components": "sketch.components.npy"}
            if sketch_factors.get("std") is not None:
                sketch_spec["std"] = "sketch.std.npy"
            for key, file_name in sketch_spec.items():
                checksums[file_name] = _atomic_save(root, file_name,
                                                    sketch_factors[key])
        manifest = {
            "format": STORE_FORMAT,
            "version": 0,
            "fingerprint": (_fingerprint_to_json(fingerprint)
                            if fingerprint is not None else None),
            "catalog_digest": catalog_digest,
            "num_drugs": len(embeddings),
            "embed_dim": int(embeddings.shape[1]),
            "dtype": str(embeddings.dtype),
            "block_size": block_size,
            "projections": sorted(projections),
            "aliases": aliases,
            "shards": shard_specs,
            "quantization": quantization,
            "sketch_factors": sketch_spec,
            "checksums": checksums,
        }
        payload = json.dumps(manifest, indent=2, sort_keys=True)
        # The manifest is written last and renamed into place atomically:
        # a crash at any earlier point leaves either no manifest or the
        # previous complete one — never a manifest pointing at missing or
        # partial shard files.  The retained version-0 snapshot lands
        # first so the committed state is always rollback-complete.
        _atomic_write_text(root, _retained_name(0), payload)
        _atomic_write_text(root, MANIFEST_NAME, payload)
        return root / MANIFEST_NAME


class MappedShardCatalog(ShardedEmbeddingCatalog):
    """A :class:`ShardedEmbeddingCatalog` whose rows live on disk.

    Shards are ``np.memmap`` views opened from a :class:`ShardStore`; the
    inherited :meth:`screen` streams them through the shared blockwise
    top-k core, so exact-mode results are bitwise-identical to the
    in-memory catalog while peak heap memory stays O(block + k).  There is
    deliberately no materialized global embedding/projection matrix — use
    :meth:`rows` to gather specific rows (the approximate-mode rerank
    does), which reads only the pages those rows live on.

    The shard list and row count are snapshotted at construction, so a
    catalog built from a store *pins* that store's version: the store can
    append/compact/roll back underneath it and the pinned catalog keeps
    screening the version it opened, bitwise-identically.
    """

    def __init__(self, store: ShardStore, block_size: int):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self._store = store
        self._version = store.version
        self._num_drugs = store.num_drugs
        self._shards = [store.open_shard(i)
                        for i in range(store.num_shards)]
        self._starts = np.array([int(s.indices[0]) for s in self._shards],
                                dtype=np.int64)
        self._embeddings = None
        self._projections = None
        self.block_size = block_size

    @property
    def store(self) -> ShardStore:
        return self._store

    @property
    def version(self) -> int:
        """The store catalog version this catalog pinned when opened."""
        return self._version

    @property
    def num_drugs(self) -> int:
        return self._num_drugs

    @property
    def projections(self) -> dict[str, np.ndarray]:
        raise RuntimeError("an out-of-core catalog never materializes a "
                           "global projection matrix; use rows()")

    def rows(self, indices: Sequence[int] | np.ndarray
             ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Gather ``(embeddings, projections)`` rows by global catalog index.

        Rows come back as ordinary in-memory arrays (tiny — callers gather
        shortlists, not catalogs), bitwise-equal to the in-memory catalog's
        gather for the same indices.
        """
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        if indices.size and (indices.min() < 0
                             or indices.max() >= self.num_drugs):
            raise IndexError(f"row index out of catalog range "
                             f"[0, {self.num_drugs})")
        template = self._shards[0]
        emb = np.empty((len(indices), self._store.embed_dim),
                       dtype=template.embeddings.dtype)
        proj = {name: np.empty((len(indices),) + matrix.shape[1:],
                               dtype=matrix.dtype)
                for name, matrix in template.projections.items()}
        shard_of = np.searchsorted(self._starts, indices, side="right") - 1
        for sid in np.unique(shard_of):
            shard = self._shards[sid]
            mask = shard_of == sid
            local = indices[mask] - int(shard.indices[0])
            emb[mask] = shard.embeddings[local]
            for name, matrix in shard.projections.items():
                proj[name][mask] = matrix[local]
        return emb, proj
