"""Deterministic streaming top-k selection for catalog screening.

The screening engine ranks candidates by ``(score descending, index
ascending)`` — exactly the order ``np.argsort(-scores, kind="stable")``
produces, but without ever sorting (or even holding) the full catalog's
scores.  Three pieces:

- :func:`top_k_desc`: ``np.argpartition``-based top-k over one array,
  O(n + k log k) instead of the O(n log n) full stable argsort, with
  tie-handling bitwise-identical to the stable sort (ties at the selection
  boundary are resolved by ascending index, the same entries the stable
  argsort's first ``k`` slots would contain).
- :class:`TopKAccumulator`: streaming selection over score blocks.  Peak
  state is O(k); each ``update`` costs O(block + k log k).  Because
  ``(score, index)`` is a *total* order (indices are unique), streaming
  selection is exact — the result is independent of how the catalog was
  split into blocks.
- :func:`merge_top_k`: deterministic merge of per-shard top-k results under
  the same total order, so a sharded catalog returns bitwise-identical
  rankings for every shard layout.

Scores may contain ``-inf`` as an exclusion sentinel (excluded candidates
can then only surface when fewer than ``k`` valid candidates exist; callers
filter them).  NaN scores are not supported.
"""

from __future__ import annotations

import numpy as np


def top_k_set(scores: np.ndarray, k: int) -> np.ndarray:
    """The (unordered) index set of the ``k`` largest scores, exact on ties.

    Membership under the (score desc, index asc) total order is unique, so
    the *set* can be found in O(n) without ordering it; :func:`top_k_desc`
    adds the O(k log k) ordering pass.  Returned indices are in no
    particular order.
    """
    scores = np.asarray(scores)
    n = scores.shape[0]
    if k <= 0 or n == 0:
        return np.zeros(0, dtype=np.int64)
    if k >= n:
        return np.arange(n, dtype=np.int64)
    # k largest values (tie membership at the boundary is arbitrary here);
    # partitioning ascending on the original array avoids negating it.
    part = np.argpartition(scores, n - k)[n - k:]
    pivot = scores[part].min()
    # Entries strictly above the pivot always make the cut; the remaining
    # slots go to pivot-valued entries in ascending-index order — exactly
    # the ones a stable argsort would have placed in its first k slots.
    sure = np.flatnonzero(scores > pivot)
    tied = np.flatnonzero(scores == pivot)[:k - sure.size]
    return np.concatenate([sure, tied]).astype(np.int64, copy=False)


def top_k_desc(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, ordered like a stable argsort.

    Equivalent to ``np.argsort(-scores, kind="stable")[:k]`` — descending
    score, ties broken by ascending index — but selection-based: O(n) to
    find the boundary, O(k log k) to order the winners.
    """
    scores = np.asarray(scores)
    cand = top_k_set(scores, k)
    order = cand[np.lexsort((cand, -scores[cand]))]
    return order.astype(np.int64, copy=False)


class TopKAccumulator:
    """Running top-k of ``(score, index)`` pairs fed in arbitrary blocks.

    The selection order is total (score descending, unique index ascending),
    so the final result is independent of blocking — feeding the catalog in
    one block or one element at a time yields identical output.  The running
    candidate set is kept *unordered* (membership under a total order is
    unique, so ordering can wait): each update is O(block + k) selection,
    and the single O(k log k) sort happens in :meth:`result`.
    """

    def __init__(self, k: int):
        self.k = k
        self.indices = np.zeros(0, dtype=np.int64)
        self.scores = np.zeros(0, dtype=np.float64)

    def update(self, scores: np.ndarray, indices: np.ndarray) -> None:
        """Fold one block of ``(scores, global indices)`` into the running top-k."""
        if self.k <= 0 or len(scores) == 0:
            return
        scores = np.asarray(scores, dtype=np.float64)
        indices = np.asarray(indices, dtype=np.int64)
        # top_k_set breaks boundary ties by *position*; when the block's
        # global indices are not ascending (permuted shard layouts), order
        # the block by index first so positional ties coincide with the
        # (score desc, index asc) total order.  Contiguous layouts feed
        # ascending indices and skip the sort.
        if indices.size > 1 and not np.all(indices[1:] > indices[:-1]):
            by_index = np.argsort(indices)
            local = by_index[top_k_set(scores[by_index], self.k)]
        else:
            local = top_k_set(scores, self.k)
        merged_idx = np.concatenate([self.indices, indices[local]])
        merged_sc = np.concatenate([self.scores, scores[local]])
        if len(merged_idx) > self.k:
            # top_k_set breaks boundary ties by *position*; arranging the
            # pool index-ascending first makes positional ties coincide
            # with the global (score, index) total order.
            pool = merged_idx.argsort()
            keep = pool[top_k_set(merged_sc[pool], self.k)]
            merged_idx = merged_idx[keep]
            merged_sc = merged_sc[keep]
        self.indices = merged_idx
        self.scores = merged_sc

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, scores)`` sorted by (score desc, index asc)."""
        order = np.lexsort((self.indices, -self.scores))
        return self.indices[order], self.scores[order]


def merge_top_k(results: list[tuple[np.ndarray, np.ndarray]],
                k: int) -> tuple[np.ndarray, np.ndarray]:
    """Deterministically merge per-shard ``(indices, scores)`` top-k lists.

    Under the (score desc, index asc) total order the merge of per-shard
    winners equals the global top-k, for every partition of the catalog
    into shards.
    """
    if not results:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
    indices = np.concatenate([np.asarray(i, dtype=np.int64)
                              for i, _ in results])
    scores = np.concatenate([np.asarray(s, dtype=np.float64)
                             for _, s in results])
    keep = np.lexsort((indices, -scores))[:max(k, 0)]
    return indices[keep], scores[keep]
