"""Deterministic streaming top-k selection for catalog screening.

The screening engine ranks candidates by ``(score descending, index
ascending)`` — exactly the order ``np.argsort(-scores, kind="stable")``
produces, but without ever sorting (or even holding) the full catalog's
scores.  Three pieces:

- :func:`top_k_desc`: ``np.argpartition``-based top-k over one array,
  O(n + k log k) instead of the O(n log n) full stable argsort, with
  tie-handling bitwise-identical to the stable sort (ties at the selection
  boundary are resolved by ascending index, the same entries the stable
  argsort's first ``k`` slots would contain).
- :class:`TopKAccumulator`: streaming selection over score blocks.  Peak
  state is O(k); each ``update`` costs O(block + k log k).  Because
  ``(score, index)`` is a *total* order (indices are unique), streaming
  selection is exact — the result is independent of how the catalog was
  split into blocks.
- :func:`merge_top_k`: deterministic merge of per-shard top-k results under
  the same total order, so a sharded catalog returns bitwise-identical
  rankings for every shard layout.

Scores may contain ``-inf`` as an exclusion sentinel (excluded candidates
can then only surface when fewer than ``k`` valid candidates exist; callers
filter them).  NaN scores are not supported.
"""

from __future__ import annotations

import numpy as np


def as_float_scores(scores) -> np.ndarray:
    """Coerce to a floating array without widening: float32 stays float32.

    Non-floating inputs (integer score blocks from tests or quantized
    paths) are promoted to float64; floating inputs keep their dtype so
    the low-precision serving tier never silently pays float64 bandwidth.
    """
    scores = np.asarray(scores)
    if not np.issubdtype(scores.dtype, np.floating):
        scores = scores.astype(np.float64)
    return scores


def top_k_set(scores: np.ndarray, k: int) -> np.ndarray:
    """The (unordered) index set of the ``k`` largest scores, exact on ties.

    Membership under the (score desc, index asc) total order is unique, so
    the *set* can be found in O(n) without ordering it; :func:`top_k_desc`
    adds the O(k log k) ordering pass.  Returned indices are in no
    particular order.
    """
    scores = np.asarray(scores)
    n = scores.shape[0]
    if k <= 0 or n == 0:
        return np.zeros(0, dtype=np.int64)
    if k >= n:
        return np.arange(n, dtype=np.int64)
    # k largest values (tie membership at the boundary is arbitrary here);
    # partitioning ascending on the original array avoids negating it.
    part = np.argpartition(scores, n - k)[n - k:]
    pivot = scores[part].min()
    # Entries strictly above the pivot always make the cut; the remaining
    # slots go to pivot-valued entries in ascending-index order — exactly
    # the ones a stable argsort would have placed in its first k slots.
    sure = np.flatnonzero(scores > pivot)
    tied = np.flatnonzero(scores == pivot)[:k - sure.size]
    return np.concatenate([sure, tied]).astype(np.int64, copy=False)


def batch_top_k_sets(scores: np.ndarray, k: int) -> np.ndarray:
    """Per-row top-``k`` column sets of a ``(Q, n)`` score matrix.

    The batched form of :func:`top_k_set`: one ``argpartition`` call for
    the whole query batch instead of ``Q`` python-level calls.  Boundary
    ties are broken by ascending *column*, so membership matches
    ``top_k_set`` row-by-row exactly when columns are ordered by ascending
    global index.  Returns a ``(Q, min(k, n))`` array of column indices in
    ascending order per row.
    """
    scores = np.asarray(scores)
    num_queries, n = scores.shape
    if k <= 0 or n == 0:
        return np.zeros((num_queries, 0), dtype=np.int64)
    if k >= n:
        return np.broadcast_to(np.arange(n, dtype=np.int64),
                               (num_queries, n))
    part = np.argpartition(scores, n - k, axis=1)[:, n - k:]
    pivots = np.take_along_axis(scores, part, axis=1).min(axis=1)
    above = scores > pivots[:, None]
    at_pivot = scores == pivots[:, None]
    # Entries strictly above the per-row pivot always make the cut; the
    # remaining slots go to pivot-valued entries left-to-right (ascending
    # column), exactly top_k_set's tie rule.  Each row keeps exactly k
    # columns, so the flat nonzero unravels to a dense (Q, k) grid.
    need = k - above.sum(axis=1)
    keep = above | (at_pivot & (np.cumsum(at_pivot, axis=1)
                                <= need[:, None]))
    return np.nonzero(keep)[1].reshape(num_queries, k).astype(
        np.int64, copy=False)


def top_k_desc(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, ordered like a stable argsort.

    Equivalent to ``np.argsort(-scores, kind="stable")[:k]`` — descending
    score, ties broken by ascending index — but selection-based: O(n) to
    find the boundary, O(k log k) to order the winners.
    """
    scores = np.asarray(scores)
    cand = top_k_set(scores, k)
    order = cand[np.lexsort((cand, -scores[cand]))]
    return order.astype(np.int64, copy=False)


class TopKAccumulator:
    """Running top-k of ``(score, index)`` pairs fed in arbitrary blocks.

    The selection order is total (score descending, unique index ascending),
    so the final result is independent of blocking — feeding the catalog in
    one block or one element at a time yields identical output.  The running
    candidate set is kept *unordered* (membership under a total order is
    unique, so ordering can wait): each update is O(block + k) selection,
    and the single O(k log k) sort happens in :meth:`result`.
    """

    def __init__(self, k: int):
        self.k = k
        self.indices = np.zeros(0, dtype=np.int64)
        self.scores = np.zeros(0, dtype=np.float64)

    def update(self, scores: np.ndarray, indices: np.ndarray) -> None:
        """Fold one block of ``(scores, global indices)`` into the running top-k."""
        if self.k <= 0 or len(scores) == 0:
            return
        scores = as_float_scores(scores)
        indices = np.asarray(indices, dtype=np.int64)
        if self.scores.size == 0 and self.scores.dtype != scores.dtype:
            # Adopt the stream's dtype so float32 blocks stay float32
            # end-to-end (concatenating with an empty float64 array would
            # otherwise promote every block).
            self.scores = self.scores.astype(scores.dtype)
        # top_k_set breaks boundary ties by *position*; when the block's
        # global indices are not ascending (permuted shard layouts), order
        # the block by index first so positional ties coincide with the
        # (score desc, index asc) total order.  Contiguous layouts feed
        # ascending indices and skip the sort.
        if indices.size > 1 and not np.all(indices[1:] > indices[:-1]):
            by_index = np.argsort(indices)
            local = by_index[top_k_set(scores[by_index], self.k)]
        else:
            local = top_k_set(scores, self.k)
        merged_idx = np.concatenate([self.indices, indices[local]])
        merged_sc = np.concatenate([self.scores, scores[local]])
        if len(merged_idx) > self.k:
            # top_k_set breaks boundary ties by *position*; arranging the
            # pool index-ascending first makes positional ties coincide
            # with the global (score, index) total order.
            pool = merged_idx.argsort()
            keep = pool[top_k_set(merged_sc[pool], self.k)]
            merged_idx = merged_idx[keep]
            merged_sc = merged_sc[keep]
        self.indices = merged_idx
        self.scores = merged_sc

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, scores)`` sorted by (score desc, index asc)."""
        order = np.lexsort((self.indices, -self.scores))
        return self.indices[order], self.scores[order]


def merge_top_k(results: list[tuple[np.ndarray, np.ndarray]],
                k: int) -> tuple[np.ndarray, np.ndarray]:
    """Deterministically merge per-shard ``(indices, scores)`` top-k lists.

    Under the (score desc, index asc) total order the merge of per-shard
    winners equals the global top-k, for every partition of the catalog
    into shards.
    """
    if not results:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
    indices = np.concatenate([np.asarray(i, dtype=np.int64)
                              for i, _ in results])
    # Preserve the per-shard score dtype (mixed dtypes promote to the
    # widest, which is the only defensible merge semantics anyway).
    scores = np.concatenate([as_float_scores(s) for _, s in results])
    keep = np.lexsort((indices, -scores))[:max(k, 0)]
    return indices[keep], scores[keep]
