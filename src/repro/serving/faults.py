"""Deterministic fault injection for the multi-host screening stack.

Fault tolerance is only trustworthy if every failure mode is *driven*, not
hoped for.  This module is the shared harness: a :class:`FaultPolicy` is a
list of :class:`FaultRule` entries keyed by ``(op, shard, attempt)`` that
decide — deterministically, from call order alone — when a request is
delayed, dropped, errored, or corrupted.  The same policy object plugs into
both ends of the transport:

- **Worker-side** (:class:`~repro.serving.remote.ShardWorker` takes a
  ``fault_policy``): ``delay`` sleeps before answering, ``drop`` severs the
  connection without a reply, ``error`` returns a structured error
  response, and ``corrupt`` flips bytes in the reply payload *after* the
  checksum was computed — exactly what a torn frame looks like on the
  wire.
- **Client-side / in-process** (:class:`~repro.serving.remote
  .RemoteShardExecutor` takes one too): ``delay`` stalls before the
  request is sent (driving client timeouts), ``drop`` raises a connection
  error before any bytes move, and ``error`` fails the request locally —
  so retry/failover logic is testable without a misbehaving server, or
  any server at all.

Determinism comes from *attempt counting*: the policy keeps one counter
per ``(op, shard)`` key, incremented on every :meth:`FaultPolicy.decide`
call, and a rule with ``attempt=n`` fires exactly when that counter reads
``n``.  Two runs issuing the same sequence of requests see the same
faults, which is what lets the tests assert **bitwise-identical** merged
top-k results under any fault schedule.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

FAULT_ACTIONS = ("delay", "drop", "error", "corrupt")


class CrashPoint(BaseException):
    """A simulated process death at a named point inside a store mutation.

    Deliberately a ``BaseException``: production code that catches
    ``Exception`` to degrade gracefully (the service detaching a failing
    store, a worker replying with a structured error) must *not* be able
    to swallow a simulated crash — a real ``kill -9`` cannot be caught
    either.  Chaos tests catch it explicitly, then re-open the store in a
    "fresh process" (a new :class:`~repro.serving.store.ShardStore`) and
    assert recovery lands on a committed catalog version.
    """

    @property
    def point(self) -> str:
        return self.args[0] if self.args else ""


class CrashPolicy:
    """Deterministic crash injection for the store's commit protocol.

    Every journal/segment/manifest write inside a
    :class:`~repro.serving.store.ShardStore` mutation is bracketed by a
    named *crash point* (``"append.journal"``, ``"append.file:..."``,
    ``"compact.precommit"``, ...).  A mutation with a ``CrashPolicy``
    attached calls :meth:`check` at each point; the policy raises
    :class:`CrashPoint` the first time the named point is reached —
    simulating the writer dying exactly there — and records every point
    it visits in :attr:`seen`, so a recorder pass (``CrashPolicy()``,
    no target) enumerates the complete crash surface of a mutation for
    an exhaustive sweep::

        recorder = CrashPolicy()
        store.crash_policy = recorder
        store.append(rows, proj)            # visits every point, no crash
        for point in recorder.seen:         # now kill a writer at each one
            ...

    Thread-safe, single-shot per policy instance (a crashed writer is
    dead; the test builds a new policy for the next victim).
    """

    def __init__(self, point: str | None = None):
        self.point = point
        self.seen: list[str] = []
        self.fired = False
        self._lock = threading.Lock()

    def check(self, name: str) -> None:
        """Record the visit; die here when this is the targeted point."""
        with self._lock:
            self.seen.append(name)
            if self.fired or self.point is None or name != self.point:
                return
            self.fired = True
        raise CrashPoint(name)


@dataclass(frozen=True)
class FaultRule:
    """One injectable fault: what to do, and exactly when to do it.

    ``shard``/``attempt``/``op`` are match filters; ``None`` matches
    anything.  ``attempt`` counts per ``(op, shard)`` key starting at 0 —
    "the first time shard 2 is screened", "the third retry", and so on.
    ``times`` bounds how often the rule fires (``None`` = every match),
    so a single-shot fault and a permanently black-holed shard are both
    one rule.
    """

    action: str                     # one of FAULT_ACTIONS
    shard: int | None = None        # None = any shard
    attempt: int | None = None      # None = every attempt
    op: str | None = None           # None = any operation
    delay_s: float = 0.0            # sleep length for "delay"
    times: int | None = 1           # firings before the rule retires

    def __post_init__(self):
        if self.action not in FAULT_ACTIONS:
            raise ValueError(f"action must be one of {FAULT_ACTIONS}, "
                             f"got {self.action!r}")
        if self.action == "delay" and self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 or None")

    def matches(self, op: str, shard: int | None, attempt: int) -> bool:
        return ((self.op is None or self.op == op)
                and (self.shard is None or self.shard == shard)
                and (self.attempt is None or self.attempt == attempt))


class FaultInjected(RuntimeError):
    """An ``error``-action fault surfaced as an exception (client side)."""


@dataclass
class _Firing:
    """One recorded fault firing, for test assertions."""

    op: str
    shard: int | None
    attempt: int
    action: str


class FaultPolicy:
    """Deterministic schedule of injected faults, shared by client and worker.

    Thread-safe: worker handler threads and client fan-out threads hit the
    same counters.  :attr:`fired` records every firing in decision order,
    so a test can assert not just the outcome but that the schedule it
    wrote actually executed.
    """

    def __init__(self, rules: list[FaultRule] | tuple[FaultRule, ...] = ()):
        self._rules: list[FaultRule] = list(rules)
        self._remaining: list[int | None] = [r.times for r in self._rules]
        self._counters: dict[tuple[str, int | None], int] = {}
        self._lock = threading.Lock()
        self.fired: list[_Firing] = []

    # ------------------------------------------------------------------
    @classmethod
    def single(cls, action: str, shard: int | None = None,
               attempt: int | None = 0, op: str | None = None,
               delay_s: float = 0.0, times: int | None = 1) -> "FaultPolicy":
        """One-rule policy — the common shape for fault-schedule sweeps."""
        return cls([FaultRule(action=action, shard=shard, attempt=attempt,
                              op=op, delay_s=delay_s, times=times)])

    # ------------------------------------------------------------------
    def decide(self, op: str, shard: int | None = None) -> FaultRule | None:
        """The fault (if any) to inject for this request, consuming a turn.

        Every call advances the ``(op, shard)`` attempt counter exactly
        once, whether or not a rule fires — attempt indices always mean
        "the n-th time this request shape was seen".
        """
        with self._lock:
            key = (op, shard)
            attempt = self._counters.get(key, 0)
            self._counters[key] = attempt + 1
            for index, rule in enumerate(self._rules):
                remaining = self._remaining[index]
                if remaining == 0:
                    continue
                if not rule.matches(op, shard, attempt):
                    continue
                if remaining is not None:
                    self._remaining[index] = remaining - 1
                self.fired.append(_Firing(op=op, shard=shard,
                                          attempt=attempt,
                                          action=rule.action))
                return rule
            return None

    def attempts(self, op: str, shard: int | None = None) -> int:
        """How many times ``(op, shard)`` has been decided so far."""
        with self._lock:
            return self._counters.get((op, shard), 0)

    def reset(self) -> None:
        """Rewind counters, rule budgets, and the firing log."""
        with self._lock:
            self._counters.clear()
            self._remaining = [r.times for r in self._rules]
            self.fired = []


def corrupt_payload(payload: bytes | bytearray) -> bytes:
    """Flip bytes so any checksum over ``payload`` fails (empty stays empty).

    Used by the worker's ``corrupt`` action and by store-corruption tests;
    XOR keeps the length identical, so the damage is invisible to framing
    and only an integrity check can catch it — the failure mode a torn
    page or a bad NIC actually produces.
    """
    if not payload:
        return bytes(payload)
    damaged = bytearray(payload)
    for offset in range(0, min(len(damaged), 16)):
        damaged[offset] ^= 0xFF
    return bytes(damaged)
