"""Negative sampling for DDI training.

The paper (Sec. IV-A): "we randomly sample a drug pair from the complement
set of positive samples for each positive sample", producing a balanced
corpus.  We reproduce that exactly, with rejection sampling against the
positive set and an optional extra exclusion set (e.g. pairs reserved for a
case study).
"""

from __future__ import annotations

import numpy as np

from .dataset import DDIDataset, canonical_pairs


def sample_negative_pairs(num_drugs: int, positive_pairs: np.ndarray,
                          n_samples: int, seed: int = 0,
                          exclude: set[tuple[int, int]] | None = None
                          ) -> np.ndarray:
    """Sample ``n_samples`` distinct non-positive, non-self pairs.

    Raises ``ValueError`` when the complement set is too small to satisfy
    the request.
    """
    positive_pairs = canonical_pairs(positive_pairs)
    forbidden = {(int(i), int(j)) for i, j in positive_pairs}
    if exclude:
        forbidden |= {(min(a, b), max(a, b)) for a, b in exclude}
    total_pairs = num_drugs * (num_drugs - 1) // 2
    available = total_pairs - len(forbidden)
    if n_samples > available:
        raise ValueError(f"requested {n_samples} negatives but only "
                         f"{available} non-positive pairs exist")

    rng = np.random.default_rng(seed)
    chosen: set[tuple[int, int]] = set()
    result = np.empty((n_samples, 2), dtype=np.int64)
    count = 0
    # Rejection sampling with batch draws; dense fallback when nearly full.
    while count < n_samples:
        remaining = n_samples - count
        batch = rng.integers(0, num_drugs, size=(max(remaining * 2, 64), 2))
        batch = batch[batch[:, 0] != batch[:, 1]]
        batch = np.sort(batch, axis=1)
        for i, j in batch:
            key = (int(i), int(j))
            if key in forbidden or key in chosen:
                continue
            chosen.add(key)
            result[count] = key
            count += 1
            if count == n_samples:
                break
        if count < n_samples and len(chosen) + len(forbidden) > 0.8 * total_pairs:
            # Dense fallback: enumerate the complement explicitly.
            upper = np.triu(np.ones((num_drugs, num_drugs), dtype=bool), 1)
            for i, j in forbidden | chosen:
                upper[i, j] = False
            rows, cols = np.nonzero(upper)
            pool = np.stack([rows, cols], axis=1)
            picks = rng.choice(len(pool), size=n_samples - count, replace=False)
            result[count:] = pool[picks]
            count = n_samples
    return result


def balanced_pairs_and_labels(dataset: DDIDataset, seed: int = 0,
                              exclude: set[tuple[int, int]] | None = None
                              ) -> tuple[np.ndarray, np.ndarray]:
    """Positives plus an equal number of sampled negatives, shuffled.

    Returns ``(pairs, labels)`` where ``pairs`` is (2N, 2) and ``labels`` is
    the 0/1 vector; this is the balanced corpus every model trains on.
    """
    positives = dataset.positive_pairs
    negatives = sample_negative_pairs(dataset.num_drugs, positives,
                                      len(positives), seed=seed,
                                      exclude=exclude)
    pairs = np.concatenate([positives, negatives], axis=0)
    labels = np.concatenate([np.ones(len(positives)), np.zeros(len(negatives))])
    rng = np.random.default_rng(seed + 1)
    order = rng.permutation(len(pairs))
    return pairs[order], labels[order]
