"""Cached access to the paired benchmark corpora.

Experiments repeatedly ask for "TWOSIDES at scale s, seed k"; regenerating
the universe each time would dominate runtime, so benchmarks are memoised on
``(scale, seed)``.
"""

from __future__ import annotations

from functools import lru_cache

from .dataset import DDIDataset
from .synthetic import DDIBenchmark, make_benchmark

DATASET_NAMES = ("twosides", "drugbank")


@lru_cache(maxsize=8)
def load_benchmark(scale: float = 1.0, seed: int = 0) -> DDIBenchmark:
    """The paired TWOSIDES-like / DrugBank-like corpora (memoised)."""
    return make_benchmark(scale=scale, seed=seed)


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> DDIDataset:
    """Load one corpus by its paper name (case-insensitive)."""
    key = name.lower()
    if key not in DATASET_NAMES:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    benchmark = load_benchmark(scale=scale, seed=seed)
    return benchmark.twosides if key == "twosides" else benchmark.drugbank
