"""Train/validation/test splitting.

Three regimes from the paper:

- **random split** 80/10/10 over labeled pairs (Sec. IV-B), repeated over
  seeds and averaged;
- **training-size sweep** for Fig. 4 (train fraction 10%..80%);
- **cold-start split** for Table IX: 5% of drugs are removed from training
  entirely; every pair touching them is test-only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Split:
    """Index sets into a (pairs, labels) corpus."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray

    def sizes(self) -> tuple[int, int, int]:
        return len(self.train), len(self.val), len(self.test)


def random_split(n_samples: int, seed: int = 0, train_fraction: float = 0.8,
                 val_fraction: float = 0.1) -> Split:
    """Shuffle indices and cut at the requested fractions."""
    if n_samples < 3:
        raise ValueError("need at least 3 samples to split")
    if train_fraction <= 0 or val_fraction < 0:
        raise ValueError("fractions must be positive")
    if train_fraction + val_fraction >= 1.0:
        raise ValueError("train + val fractions must leave room for test")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_samples)
    n_train = max(int(round(n_samples * train_fraction)), 1)
    n_val = max(int(round(n_samples * val_fraction)), 1)
    n_train = min(n_train, n_samples - 2)
    n_val = min(n_val, n_samples - n_train - 1)
    return Split(train=order[:n_train],
                 val=order[n_train:n_train + n_val],
                 test=order[n_train + n_val:])


def cold_start_split(pairs: np.ndarray, num_drugs: int, seed: int = 0,
                     unseen_fraction: float = 0.05,
                     val_fraction: float = 0.1
                     ) -> tuple[Split, np.ndarray]:
    """Table IX regime: hold out a fraction of *drugs* as never-trained.

    Pairs touching an unseen drug form the test set; the remaining pairs are
    split into train/val.  Returns the split and the unseen drug ids.
    """
    pairs = np.asarray(pairs)
    rng = np.random.default_rng(seed)
    n_unseen = max(int(round(num_drugs * unseen_fraction)), 1)
    unseen = rng.choice(num_drugs, size=n_unseen, replace=False)
    unseen_mask = np.zeros(num_drugs, dtype=bool)
    unseen_mask[unseen] = True

    touches_unseen = unseen_mask[pairs[:, 0]] | unseen_mask[pairs[:, 1]]
    test_idx = np.nonzero(touches_unseen)[0]
    rest = np.nonzero(~touches_unseen)[0]
    if len(test_idx) == 0:
        raise ValueError("no pair touches an unseen drug; enlarge the corpus")
    if len(rest) < 2:
        raise ValueError("not enough seen-only pairs to train on")
    rest = rng.permutation(rest)
    n_val = max(int(round(len(rest) * val_fraction)), 1)
    return (Split(train=rest[n_val:], val=rest[:n_val], test=test_idx),
            unseen)
