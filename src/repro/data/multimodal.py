"""Multi-modal graph substrate for the Decagon baseline.

Decagon (Zitnik et al., 2018) consumes a graph of drug-drug, drug-protein,
and protein-protein edges.  The paper compares against Decagon's reported
TWOSIDES numbers; to *run* Decagon offline we synthesise the protein side
coherently with the DDI ground truth: each pharmacophore maps to a handful
of target proteins, a drug targets the proteins of its pharmacophores, and
the PPI network preferentially links proteins whose pharmacophores react.
Thus the multi-modal signal is informative about DDIs (as in reality) while
remaining strictly weaker than direct structural evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import DDIDataset
from .synthetic import DrugUniverse


@dataclass
class MultiModalGraph:
    """Edge lists for the Decagon encoder."""

    num_drugs: int
    num_proteins: int
    drug_target_pairs: np.ndarray   # (E_dt, 2): drug idx, protein idx
    ppi_pairs: np.ndarray           # (E_pp, 2): protein idx, protein idx

    def __post_init__(self):
        if self.drug_target_pairs.size:
            if self.drug_target_pairs[:, 0].max() >= self.num_drugs:
                raise ValueError("drug index out of range in drug_target_pairs")
            if self.drug_target_pairs[:, 1].max() >= self.num_proteins:
                raise ValueError("protein index out of range in drug_target_pairs")
        if self.ppi_pairs.size and self.ppi_pairs.max() >= self.num_proteins:
            raise ValueError("protein index out of range in ppi_pairs")


def build_multimodal_graph(universe: DrugUniverse, dataset: DDIDataset,
                           seed: int = 0, proteins_per_pharmacophore: int = 3,
                           random_targets: int = 2,
                           target_dropout: float = 0.35,
                           background_ppi_probability: float = 0.05
                           ) -> MultiModalGraph:
    """Derive the protein substrate from the latent pharmacophore model.

    Real target annotations are noisy and incomplete, so each true
    pharmacophore-derived target is *dropped* with probability
    ``target_dropout`` and every drug gains ``random_targets`` spurious
    targets.  Without this, Decagon would receive near-ground-truth features
    and overshoot its published relative standing.
    """
    rng = np.random.default_rng(seed)
    model = universe.model
    n_pharma = len(model.names)
    num_proteins = n_pharma * proteins_per_pharmacophore
    # Pharmacophore p owns proteins [p*k, (p+1)*k).
    protein_block = {name: np.arange(i * proteins_per_pharmacophore,
                                     (i + 1) * proteins_per_pharmacophore)
                     for i, name in enumerate(model.names)}

    drug_target: list[tuple[int, int]] = []
    for drug_idx, drug in enumerate(dataset.drugs):
        targets: set[int] = set()
        for name in drug.pharmacophores:
            if rng.random() < target_dropout:
                continue
            block = protein_block[name]
            targets.add(int(rng.choice(block)))
        for _ in range(random_targets):
            targets.add(int(rng.integers(num_proteins)))
        drug_target.extend((drug_idx, protein) for protein in sorted(targets))

    # PPI: background random edges plus edges bridging reacting pharmacophores.
    ppi: set[tuple[int, int]] = set()
    for a in range(num_proteins):
        for b in range(a + 1, num_proteins):
            if rng.random() < background_ppi_probability:
                ppi.add((a, b))
    rule = model.rule_matrix
    for i in range(n_pharma):
        for j in range(i, n_pharma):
            if rule[i, j]:
                block_i = protein_block[model.names[i]]
                block_j = protein_block[model.names[j]]
                a = int(rng.choice(block_i))
                b = int(rng.choice(block_j))
                if a != b:
                    ppi.add((min(a, b), max(a, b)))

    return MultiModalGraph(
        num_drugs=dataset.num_drugs,
        num_proteins=num_proteins,
        drug_target_pairs=np.array(sorted(drug_target), dtype=np.int64).reshape(-1, 2),
        ppi_pairs=np.array(sorted(ppi), dtype=np.int64).reshape(-1, 2),
    )
