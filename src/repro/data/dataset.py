"""Core dataset container for drug-drug interaction corpora."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..chem.generator import DrugRecord


def canonical_pairs(pairs: np.ndarray) -> np.ndarray:
    """Sort each pair so that the smaller index comes first."""
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    return np.sort(pairs, axis=1)


@dataclass
class DDIDataset:
    """A DDI corpus: drugs with SMILES plus known positive interactions.

    Mirrors what TDC provides for TWOSIDES / DrugBank (Table I): a drug list
    and a set of interacting pairs.  Pairs are stored canonically
    (``i < j``); the interaction relation is symmetric.
    """

    name: str
    drugs: list[DrugRecord]
    positive_pairs: np.ndarray
    universe_indices: np.ndarray = field(default=None)

    def __post_init__(self):
        self.positive_pairs = canonical_pairs(self.positive_pairs)
        n = len(self.drugs)
        if self.positive_pairs.size:
            if self.positive_pairs.max() >= n or self.positive_pairs.min() < 0:
                raise ValueError("positive pair index out of range")
            if (self.positive_pairs[:, 0] == self.positive_pairs[:, 1]).any():
                raise ValueError("self-interactions are not allowed")
        # Deduplicate.
        self.positive_pairs = np.unique(self.positive_pairs, axis=0)
        if self.universe_indices is None:
            self.universe_indices = np.arange(n, dtype=np.int64)
        else:
            self.universe_indices = np.asarray(self.universe_indices,
                                               dtype=np.int64)
        self._positive_set = {(int(i), int(j)) for i, j in self.positive_pairs}

    # ------------------------------------------------------------------
    @property
    def num_drugs(self) -> int:
        return len(self.drugs)

    @property
    def num_ddis(self) -> int:
        return len(self.positive_pairs)

    @property
    def num_possible_pairs(self) -> int:
        n = self.num_drugs
        return n * (n - 1) // 2

    @property
    def density(self) -> float:
        """Fraction of all unordered pairs that are labeled positive."""
        return self.num_ddis / max(self.num_possible_pairs, 1)

    @property
    def smiles(self) -> list[str]:
        return [drug.smiles for drug in self.drugs]

    def is_positive(self, i: int, j: int) -> bool:
        if i == j:
            return False
        key = (min(i, j), max(i, j))
        return key in self._positive_set

    def drug_by_id(self, drug_id: str) -> DrugRecord:
        for drug in self.drugs:
            if drug.drug_id == drug_id:
                return drug
        raise KeyError(f"unknown drug id {drug_id!r} in dataset {self.name!r}")

    def statistics(self) -> dict:
        """The Table I row for this dataset."""
        return {"dataset": self.name, "num_drugs": self.num_drugs,
                "num_ddis": self.num_ddis, "density": round(self.density, 4)}

    def __repr__(self) -> str:
        return (f"DDIDataset(name={self.name!r}, drugs={self.num_drugs}, "
                f"ddis={self.num_ddis})")
