"""Synthetic TWOSIDES-like and DrugBank-like DDI corpora.

The real corpora are fetched from Therapeutics Data Commons in the paper
(Table I: TWOSIDES 645 drugs / 63 473 DDIs; DrugBank 1 706 / 191 402);
offline we generate statistically matched substitutes.

Mechanism
---------
1. A :class:`DrugUniverse` composes drugs from SMILES fragments
   (:mod:`repro.chem.generator`); each drug carries latent *pharmacophores*.
2. An :class:`InteractionModel` holds symmetric reaction rules over
   pharmacophores; a drug pair is *rule-positive* when any pharmacophore of
   one reacts with any pharmacophore of the other.  Rules are **calibrated**:
   they are added greedily until the fraction of rule-positive pairs matches
   the DrugBank density of Table I (plus small headroom), so that sampling
   negatives from the unlabeled complement stays nearly clean — mirroring
   how sparse the real DrugBank label matrix is.
3. The TWOSIDES-like corpus covers an *interaction-prone subset* of drugs,
   selected by densest-subgraph peeling until the subset's rule-positive
   rate matches TWOSIDES' much higher density.  (In reality, TWOSIDES
   covers heavily co-prescribed, adverse-event-rich drugs — also a densely
   interacting subset of DrugBank's catalogue.)
4. Each dataset samples its labeled positives from its rule-positive pairs
   down to the exact Table I counts, plus a small off-rule noise fraction.
   Sampling differs per dataset, so some true interactions are labeled in
   one corpus and missing from the other — the raw material for the novel-
   DDI case studies (Tables VII/VIII).

Because labels derive from shared substructures, the paper's hypothesis
("drugs with similar functional groups interact similarly") holds by
construction and the HyGNN code path is exercised faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..chem.fragments import FRAGMENT_LIBRARY, fragment_sets
from ..chem.generator import DrugRecord, MoleculeGenerator
from .dataset import DDIDataset

# Table I targets.
TWOSIDES_DRUGS = 645
TWOSIDES_DDIS = 63_473
DRUGBANK_DRUGS = 1_706
DRUGBANK_DDIS = 191_402

TWOSIDES_DENSITY = TWOSIDES_DDIS / (TWOSIDES_DRUGS * (TWOSIDES_DRUGS - 1) / 2)
DRUGBANK_DENSITY = DRUGBANK_DDIS / (DRUGBANK_DRUGS * (DRUGBANK_DRUGS - 1) / 2)

# Raw rule-positive rates leave ~1-2 density points of headroom above the
# labeled densities, keeping complement-sampled negatives nearly clean.
GLOBAL_RULE_RATE = 0.142
TWOSIDES_SUBSET_RATE = 0.32
DEFAULT_NOISE_RATE = 0.02


class InteractionModel:
    """Symmetric pharmacophore reaction rules.

    ``rule_matrix[a, b] == True`` means pharmacophore *a* reacts with *b*.
    Use :meth:`calibrated` to fit the rule set to a target rule-positive
    rate over a concrete drug corpus; the plain constructor draws rules at
    a fixed density (useful for unit tests).
    """

    def __init__(self, pharmacophore_names: list[str], seed: int,
                 rule_density: float = 0.26):
        if not pharmacophore_names:
            raise ValueError("need at least one pharmacophore")
        self.names = list(pharmacophore_names)
        self.index = {name: i for i, name in enumerate(self.names)}
        rng = np.random.default_rng(seed)
        k = len(self.names)
        upper = rng.random((k, k)) < rule_density
        self.rule_matrix = np.triu(upper, 1)
        self.rule_matrix = self.rule_matrix | self.rule_matrix.T
        for i in range(k):
            if not self.rule_matrix[i].any():
                j = (i + 1 + int(rng.integers(k - 1))) % k
                self.rule_matrix[i, j] = self.rule_matrix[j, i] = True

    # ------------------------------------------------------------------
    @classmethod
    def calibrated(cls, pharmacophore_names: list[str],
                   drugs: list[DrugRecord], seed: int,
                   target_rate: float = GLOBAL_RULE_RATE) -> "InteractionModel":
        """Greedily add rules while the rule-positive rate stays <= target.

        Candidate pharmacophore pairs are visited in a seeded random order;
        a rule is kept only if the corpus-wide rate it induces does not
        overshoot ``target_rate``.
        """
        model = cls.__new__(cls)
        model.names = list(pharmacophore_names)
        model.index = {name: i for i, name in enumerate(model.names)}
        k = len(model.names)
        model.rule_matrix = np.zeros((k, k), dtype=bool)

        membership = model.membership_matrix(drugs)
        n = len(drugs)
        total_pairs = n * (n - 1) / 2
        rng = np.random.default_rng(seed)
        candidates = [(a, b) for a in range(k) for b in range(a, k)]
        rng.shuffle(candidates)

        triggered = np.zeros((n, n), dtype=bool)
        for a, b in candidates:
            new = np.outer(membership[:, a], membership[:, b])
            new = new | new.T
            combined = triggered | new
            np.fill_diagonal(combined, False)
            rate = np.triu(combined, 1).sum() / total_pairs
            if rate <= target_rate:
                triggered = combined
                model.rule_matrix[a, b] = model.rule_matrix[b, a] = True
        return model

    def membership_matrix(self, drugs: list[DrugRecord]) -> np.ndarray:
        """Binary (num_drugs, num_pharmacophores) membership matrix."""
        matrix = np.zeros((len(drugs), len(self.names)), dtype=bool)
        for row, drug in enumerate(drugs):
            for name in drug.pharmacophores:
                if name in self.index:
                    matrix[row, self.index[name]] = True
        return matrix

    def rule_positive_matrix(self, drugs: list[DrugRecord]) -> np.ndarray:
        """Dense boolean matrix: which drug pairs are rule-positive."""
        membership = self.membership_matrix(drugs).astype(np.int64)
        scores = membership @ self.rule_matrix.astype(np.int64) @ membership.T
        positive = scores > 0
        np.fill_diagonal(positive, False)
        return positive


@dataclass
class DrugUniverse:
    """A shared pool of drugs with ground-truth rule interactions."""

    drugs: list[DrugRecord]
    model: InteractionModel
    rule_positive: np.ndarray  # dense bool (n, n)

    @classmethod
    def generate(cls, n_drugs: int, seed: int = 0,
                 target_rule_rate: float = GLOBAL_RULE_RATE) -> "DrugUniverse":
        generator = MoleculeGenerator(seed=seed)
        drugs = generator.generate_corpus(n_drugs)
        pharm_names = sorted(
            f.name for f in fragment_sets(FRAGMENT_LIBRARY).pharmacophores)
        model = InteractionModel.calibrated(pharm_names, drugs, seed=seed + 1,
                                            target_rate=target_rule_rate)
        rule_positive = model.rule_positive_matrix(drugs)
        return cls(drugs=drugs, model=model, rule_positive=rule_positive)

    @property
    def num_drugs(self) -> int:
        return len(self.drugs)

    def rule_rate(self, indices: np.ndarray | None = None) -> float:
        """Fraction of unordered pairs that are rule-positive."""
        if indices is None:
            indices = np.arange(self.num_drugs)
        sub = self.rule_positive[np.ix_(indices, indices)]
        n = len(indices)
        return float(np.triu(sub, 1).sum() / (n * (n - 1) / 2))

    def rule_positive_pairs(self, indices: np.ndarray) -> np.ndarray:
        """Upper-triangle rule-positive pairs among ``indices`` (local ids)."""
        sub = self.rule_positive[np.ix_(indices, indices)]
        rows, cols = np.nonzero(np.triu(sub, 1))
        return np.stack([rows, cols], axis=1)

    def rule_negative_pairs(self, indices: np.ndarray) -> np.ndarray:
        sub = self.rule_positive[np.ix_(indices, indices)]
        n = len(indices)
        upper = np.triu(np.ones((n, n), dtype=bool), 1)
        rows, cols = np.nonzero(upper & ~sub)
        return np.stack([rows, cols], axis=1)

    def dense_subset(self, size: int, target_rate: float,
                     seed: int = 0) -> np.ndarray:
        """Interaction-prone drug subset via densest-subgraph peeling.

        Repeatedly removes the lowest-rule-degree drug until either the
        remaining set's internal rule-positive rate reaches ``target_rate``
        or only ``size`` drugs remain, then samples ``size`` drugs from the
        survivors.  Models TWOSIDES' bias toward interaction-rich drugs.
        """
        n = self.num_drugs
        if size > n:
            raise ValueError(f"subset size {size} exceeds universe {n}")
        degree = self.rule_positive.sum(axis=1).astype(np.int64)
        alive = np.ones(n, dtype=bool)
        alive_count = n
        internal = int(np.triu(self.rule_positive, 1).sum())
        big = np.iinfo(np.int64).max
        while alive_count > size:
            rate = internal / (alive_count * (alive_count - 1) / 2)
            if rate >= target_rate:
                break
            victim = int(np.argmin(np.where(alive, degree, big)))
            alive[victim] = False
            internal -= int(degree[victim])
            degree -= self.rule_positive[victim]
            degree[victim] = 0
            alive_count -= 1
        pool = np.nonzero(alive)[0]
        rng = np.random.default_rng(seed)
        return np.sort(rng.choice(pool, size=size, replace=False))


def _sample_dataset(universe: DrugUniverse, name: str, indices: np.ndarray,
                    target_positives: int, seed: int,
                    noise_rate: float = DEFAULT_NOISE_RATE) -> DDIDataset:
    """Label a dataset over the given universe drug ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    rng = np.random.default_rng(seed)
    rule_pos = universe.rule_positive_pairs(indices)
    rule_neg = universe.rule_negative_pairs(indices)

    n_noise = min(int(round(target_positives * noise_rate)), len(rule_neg))
    n_clean = target_positives - n_noise
    if n_clean > len(rule_pos):
        # Unlucky seeds at tiny scales can leave the rule-positive pool a few
        # pairs short of the Table I density target; top the difference up
        # with extra off-rule (noise) positives rather than failing.
        shortfall = n_clean - len(rule_pos)
        n_clean = len(rule_pos)
        n_noise += shortfall
        if n_noise > len(rule_neg):
            raise ValueError(
                f"{name}: cannot reach {target_positives} positives from "
                f"{len(rule_pos)} rule-positive and {len(rule_neg)} "
                f"rule-negative pairs")
    clean = rule_pos[rng.choice(len(rule_pos), size=n_clean, replace=False)]
    noise = (rule_neg[rng.choice(len(rule_neg), size=n_noise, replace=False)]
             if n_noise else np.empty((0, 2), dtype=np.int64))
    positives = np.concatenate([clean, noise], axis=0)
    return DDIDataset(name=name,
                      drugs=[universe.drugs[i] for i in indices],
                      positive_pairs=positives,
                      universe_indices=indices)


@dataclass
class DDIBenchmark:
    """The paired corpora of the paper plus their shared ground truth."""

    universe: DrugUniverse
    twosides: DDIDataset
    drugbank: DDIDataset


def scaled_counts(scale: float) -> dict[str, int]:
    """Drug/DDI counts at a given scale.

    Drug counts shrink linearly; DDI counts shrink with the *pair count*
    (quadratically) so that dataset density matches Table I at every scale.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    ts_drugs = max(int(round(TWOSIDES_DRUGS * scale)), 24)
    db_drugs = max(int(round(DRUGBANK_DRUGS * scale)), 60)
    db_drugs = max(db_drugs, ts_drugs + 10)
    ts_ddis = max(int(round(TWOSIDES_DENSITY * ts_drugs * (ts_drugs - 1) / 2)), 40)
    db_ddis = max(int(round(DRUGBANK_DENSITY * db_drugs * (db_drugs - 1) / 2)), 60)
    return {"twosides_drugs": ts_drugs, "twosides_ddis": ts_ddis,
            "drugbank_drugs": db_drugs, "drugbank_ddis": db_ddis}


def make_benchmark(scale: float = 1.0, seed: int = 0,
                   noise_rate: float = DEFAULT_NOISE_RATE) -> DDIBenchmark:
    """Generate the paired TWOSIDES-like / DrugBank-like corpora.

    The DrugBank-like corpus spans the whole universe; the TWOSIDES-like
    drug set is an interaction-prone subset of it, mirroring the substantial
    (and biased) overlap between the real corpora that the paper's
    cross-validation case studies (Tables VII/VIII) rely on.
    """
    counts = scaled_counts(scale)
    # The TWOSIDES subset must end up denser than the TWOSIDES labeled
    # density, otherwise every rule-positive gets labeled and no unlabeled
    # true interactions remain for the Tables VII/VIII case studies.  Small
    # universes concentrate less under peeling, so escalate the global rule
    # rate until the subset has headroom.
    headroom = TWOSIDES_DENSITY + 0.012
    universe = None
    ts_indices = None
    for attempt in range(6):
        candidate = DrugUniverse.generate(
            counts["drugbank_drugs"], seed=seed,
            target_rule_rate=GLOBAL_RULE_RATE + 0.02 * attempt)
        indices = candidate.dense_subset(counts["twosides_drugs"],
                                         target_rate=TWOSIDES_SUBSET_RATE,
                                         seed=seed + 7)
        universe, ts_indices = candidate, indices
        if candidate.rule_rate(indices) >= headroom:
            break
    twosides = _sample_dataset(universe, "TWOSIDES", ts_indices,
                               counts["twosides_ddis"], seed=seed + 101,
                               noise_rate=noise_rate)
    drugbank = _sample_dataset(universe, "DrugBank",
                               np.arange(counts["drugbank_drugs"]),
                               counts["drugbank_ddis"], seed=seed + 202,
                               noise_rate=noise_rate)
    return DDIBenchmark(universe=universe, twosides=twosides,
                        drugbank=drugbank)
