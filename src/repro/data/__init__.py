"""``repro.data`` — DDI corpora, negative sampling, splits, multimodal graph."""

from .dataset import DDIDataset, canonical_pairs
from .multimodal import MultiModalGraph, build_multimodal_graph
from .negative import balanced_pairs_and_labels, sample_negative_pairs
from .registry import DATASET_NAMES, load_benchmark, load_dataset
from .splits import Split, cold_start_split, random_split
from .synthetic import (DDIBenchmark, DrugUniverse, InteractionModel,
                        make_benchmark, scaled_counts,
                        DRUGBANK_DDIS, DRUGBANK_DRUGS, DRUGBANK_DENSITY,
                        TWOSIDES_DDIS, TWOSIDES_DRUGS, TWOSIDES_DENSITY)

__all__ = [
    "DDIDataset", "canonical_pairs",
    "MultiModalGraph", "build_multimodal_graph",
    "balanced_pairs_and_labels", "sample_negative_pairs",
    "DATASET_NAMES", "load_benchmark", "load_dataset",
    "Split", "cold_start_split", "random_split",
    "DDIBenchmark", "DrugUniverse", "InteractionModel", "make_benchmark",
    "scaled_counts",
    "TWOSIDES_DRUGS", "TWOSIDES_DDIS", "TWOSIDES_DENSITY",
    "DRUGBANK_DRUGS", "DRUGBANK_DDIS", "DRUGBANK_DENSITY",
]
