"""Random-walk generation for DeepWalk and node2vec.

DeepWalk uses uniform first-order walks; node2vec biases the second-order
transition by the return parameter ``p`` and in-out parameter ``q``
(Grover & Leskovec, 2016).  The paper's settings (Sec. IV-B): walk length
100, 10 walks per node, window 5.
"""

from __future__ import annotations

import numpy as np

from ..graphs import Graph


def _neighbor_lists(graph: Graph) -> list[np.ndarray]:
    neighbors: list[list[int]] = [[] for _ in range(graph.num_nodes)]
    for u, v in graph.edges:
        neighbors[u].append(v)
        neighbors[v].append(u)
    return [np.array(sorted(n), dtype=np.int64) for n in neighbors]


def uniform_random_walks(graph: Graph, num_walks: int, walk_length: int,
                         seed: int = 0) -> list[np.ndarray]:
    """DeepWalk walks: uniform neighbour choice, ``num_walks`` per node."""
    if num_walks < 1 or walk_length < 1:
        raise ValueError("num_walks and walk_length must be positive")
    rng = np.random.default_rng(seed)
    neighbors = _neighbor_lists(graph)
    walks: list[np.ndarray] = []
    for _ in range(num_walks):
        for start in rng.permutation(graph.num_nodes):
            if len(neighbors[start]) == 0:
                continue
            walk = [int(start)]
            current = int(start)
            for _ in range(walk_length - 1):
                options = neighbors[current]
                if len(options) == 0:
                    break
                current = int(options[rng.integers(len(options))])
                walk.append(current)
            walks.append(np.array(walk, dtype=np.int64))
    return walks


def node2vec_walks(graph: Graph, num_walks: int, walk_length: int,
                   p: float = 1.0, q: float = 0.5,
                   seed: int = 0) -> list[np.ndarray]:
    """Second-order biased walks.

    Transition weight from ``prev -> current -> candidate``:
    ``1/p`` to return to ``prev``, ``1`` to a common neighbour of ``prev``,
    ``1/q`` otherwise.
    """
    if p <= 0 or q <= 0:
        raise ValueError("p and q must be positive")
    rng = np.random.default_rng(seed)
    neighbors = _neighbor_lists(graph)
    neighbor_sets = [set(n.tolist()) for n in neighbors]
    walks: list[np.ndarray] = []
    for _ in range(num_walks):
        for start in rng.permutation(graph.num_nodes):
            if len(neighbors[start]) == 0:
                continue
            walk = [int(start)]
            current = int(start)
            previous = -1
            for _ in range(walk_length - 1):
                options = neighbors[current]
                if len(options) == 0:
                    break
                if previous < 0:
                    nxt = int(options[rng.integers(len(options))])
                else:
                    weights = np.where(
                        options == previous, 1.0 / p,
                        np.where([o in neighbor_sets[previous] for o in options],
                                 1.0, 1.0 / q))
                    weights = weights / weights.sum()
                    nxt = int(options[rng.choice(len(options), p=weights)])
                walk.append(nxt)
                previous, current = current, nxt
            walks.append(np.array(walk, dtype=np.int64))
    return walks


def skipgram_pairs(walks: list[np.ndarray], window: int,
                   seed: int = 0) -> np.ndarray:
    """(center, context) training pairs within ``window`` of each position."""
    if window < 1:
        raise ValueError("window must be positive")
    centers: list[np.ndarray] = []
    contexts: list[np.ndarray] = []
    for walk in walks:
        n = len(walk)
        for offset in range(1, window + 1):
            if n <= offset:
                continue
            centers.append(walk[:-offset])
            contexts.append(walk[offset:])
            centers.append(walk[offset:])
            contexts.append(walk[:-offset])
    if not centers:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.stack([np.concatenate(centers), np.concatenate(contexts)],
                     axis=1)
    rng = np.random.default_rng(seed)
    return pairs[rng.permutation(len(pairs))]
