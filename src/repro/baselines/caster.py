"""CASTER (Huang et al., AAAI 2020) — the paper's strongest baseline.

CASTER predicts DDIs from the *functional representation* of a drug pair:
a binary vector over the ESPF frequent-substructure vocabulary marking which
substructures occur in the pair.  A deep dictionary-learning architecture
maps it to a prediction:

1. **Encoder** ``f``: functional vector → latent code.
2. **Dictionary projection**: the latent code is projected onto ``k``
   learned dictionary atoms, giving linear coefficients ``r``.
3. **Decoder** ``g``: reconstructs the functional vector from the latent
   code (auto-encoding regularisation).
4. **Predictor**: an MLP on the coefficients ``r`` yields the DDI score.

Loss = BCE(prediction) + λ_recon · MSE(reconstruction) + λ_proj · ‖r‖²,
trained jointly with Adam — a faithful, compact rendition of the original
(sequential pattern mining is ESPF, as in the original paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..chem.espf import ESPF
from ..data.splits import Split
from ..metrics import EvaluationSummary
from ..nn import MLP, Adam, Linear, Module, Tensor, bce_with_logits, init
from ..nn import functional as F


@dataclass(frozen=True)
class CasterConfig:
    frequency_threshold: int = 5     # ESPF mining threshold
    latent_dim: int = 64
    dictionary_atoms: int = 32
    predictor_hidden: int = 64
    reconstruction_weight: float = 0.1
    projection_weight: float = 1e-3
    learning_rate: float = 5e-3
    weight_decay: float = 1e-4
    epochs: int = 150
    patience: int = 25
    seed: int = 0


class CasterModel(Module):
    """Encoder / dictionary / decoder / predictor stack."""

    def __init__(self, vocab_size: int, config: CasterConfig):
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.encoder = Linear(vocab_size, config.latent_dim, rng)
        self.dictionary = init.xavier_uniform(
            (config.latent_dim, config.dictionary_atoms), rng)
        self.decoder = Linear(config.latent_dim, vocab_size, rng)
        self.predictor = MLP([config.dictionary_atoms,
                              config.predictor_hidden, 1], rng)

    def forward(self, functional: Tensor
                ) -> tuple[Tensor, Tensor, Tensor]:
        """Returns (logits, reconstruction, coefficients)."""
        latent = F.relu(self.encoder(functional))
        coefficients = latent @ self.dictionary
        reconstruction = self.decoder(latent)
        logits = self.predictor(coefficients).reshape(len(functional))
        return logits, reconstruction, coefficients


class Caster:
    """Fit/predict wrapper reproducing the CASTER training recipe."""

    def __init__(self, config: CasterConfig = CasterConfig()):
        self.config = config
        self._espf: ESPF | None = None
        self._vocab: dict[str, int] = {}
        self.model: CasterModel | None = None

    # ------------------------------------------------------------------
    def _fit_vocabulary(self, smiles_corpus: list[str]) -> None:
        self._espf = ESPF(
            frequency_threshold=self.config.frequency_threshold
        ).fit(smiles_corpus)
        self._vocab = {token: i for i, token
                       in enumerate(self._espf.vocabulary(smiles_corpus))}

    def _drug_vectors(self, smiles_list: list[str]) -> np.ndarray:
        vectors = np.zeros((len(smiles_list), len(self._vocab)))
        for row, smiles in enumerate(smiles_list):
            for token in self._espf.encode(smiles):
                index = self._vocab.get(token)
                if index is not None:
                    vectors[row, index] = 1.0
        return vectors

    def pair_functional(self, drug_vectors: np.ndarray,
                        pairs: np.ndarray) -> np.ndarray:
        """Union of the two drugs' substructure sets (binary OR)."""
        pairs = np.asarray(pairs, dtype=np.int64)
        return np.maximum(drug_vectors[pairs[:, 0]], drug_vectors[pairs[:, 1]])

    # ------------------------------------------------------------------
    def fit(self, smiles_corpus: list[str], pairs: np.ndarray,
            labels: np.ndarray, split: Split) -> "Caster":
        self._fit_vocabulary(smiles_corpus)
        drug_vectors = self._drug_vectors(smiles_corpus)
        self.model = CasterModel(len(self._vocab), self.config)
        optimizer = Adam(self.model.parameters(),
                         lr=self.config.learning_rate,
                         weight_decay=self.config.weight_decay)

        train_x = self.pair_functional(drug_vectors, pairs[split.train])
        train_y = labels[split.train]
        val_x = self.pair_functional(drug_vectors, pairs[split.val])
        val_y = labels[split.val]

        best_val = np.inf
        best_state = None
        patience_left = self.config.patience
        for _ in range(self.config.epochs):
            optimizer.zero_grad()
            logits, recon, coeff = self.model(Tensor(train_x))
            loss = bce_with_logits(logits, train_y)
            recon_err = ((recon - Tensor(train_x)) ** 2).mean()
            proj_penalty = (coeff ** 2).mean()
            total = (loss + recon_err * self.config.reconstruction_weight
                     + proj_penalty * self.config.projection_weight)
            total.backward()
            optimizer.step()

            val_logits, _, _ = self.model(Tensor(val_x))
            val_loss = bce_with_logits(val_logits, val_y).item()
            if val_loss < best_val - 1e-6:
                best_val = val_loss
                best_state = self.model.state_dict()
                patience_left = self.config.patience
            else:
                patience_left -= 1
                if patience_left <= 0:
                    break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self._drug_vectors_cache = drug_vectors
        return self

    def predict_proba(self, pairs: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("Caster is not fitted")
        functional = self.pair_functional(self._drug_vectors_cache, pairs)
        logits, _, _ = self.model(Tensor(functional))
        return 1.0 / (1.0 + np.exp(-np.clip(logits.numpy(), -500, 500)))

    def evaluate(self, pairs: np.ndarray,
                 labels: np.ndarray) -> EvaluationSummary:
        return EvaluationSummary.from_scores(labels,
                                             self.predict_proba(pairs))
