"""Skip-gram with negative sampling (word2vec) on random walks.

The classic closed-form SGD updates (Mikolov et al., 2013), vectorised over
minibatches of (center, context) pairs.  Shared by DeepWalk and node2vec.
"""

from __future__ import annotations

import numpy as np


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.clip(x, -500, None))),
                    np.exp(np.clip(x, None, 500))
                    / (1.0 + np.exp(np.clip(x, None, 500))))


class SkipGramModel:
    """Two embedding matrices (input/output) trained with negative sampling."""

    def __init__(self, num_nodes: int, dim: int, seed: int = 0):
        if num_nodes < 1 or dim < 1:
            raise ValueError("num_nodes and dim must be positive")
        rng = np.random.default_rng(seed)
        self.num_nodes = num_nodes
        self.dim = dim
        self.in_embed = (rng.random((num_nodes, dim)) - 0.5) / dim
        self.out_embed = np.zeros((num_nodes, dim))
        self._rng = rng

    def train(self, pairs: np.ndarray, epochs: int = 2,
              negatives: int = 5, learning_rate: float = 0.025,
              batch_size: int = 4096) -> "SkipGramModel":
        """SGD over (center, context) pairs with ``negatives`` per positive."""
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if pairs.size == 0:
            return self
        for epoch in range(epochs):
            lr = learning_rate * (1.0 - epoch / max(epochs, 1)) + 1e-4
            order = self._rng.permutation(len(pairs))
            for start in range(0, len(pairs), batch_size):
                batch = pairs[order[start:start + batch_size]]
                self._step(batch, negatives, lr)
        return self

    def _step(self, batch: np.ndarray, negatives: int, lr: float) -> None:
        """One mean-per-row SGD step.

        Within a batch, a frequent node may occur thousands of times; summing
        all its updates (plain ``np.add.at``) multiplies the effective step
        size by its occurrence count and diverges.  We therefore *average*
        the per-occurrence gradients row-wise before applying them.
        """
        centers, contexts = batch[:, 0], batch[:, 1]
        n = len(batch)
        v = self.in_embed[centers]                                 # (n, d)
        u_pos = self.out_embed[contexts]
        score = _sigmoid((v * u_pos).sum(axis=1))                  # (n,)
        g_pos = (score - 1.0)[:, None]                             # dL/dlogit
        grad_v = g_pos * u_pos
        neg = self._rng.integers(0, self.num_nodes, size=(n, negatives))
        u_neg = self.out_embed[neg]                                # (n, k, d)
        score_neg = _sigmoid(np.einsum("nd,nkd->nk", v, u_neg))
        g_neg = score_neg[:, :, None]                              # (n, k, 1)
        grad_v += np.einsum("nkd,nko->nd", u_neg, g_neg)

        grad_in = np.zeros_like(self.in_embed)
        np.add.at(grad_in, centers, grad_v)
        counts_in = np.bincount(centers, minlength=self.num_nodes)
        self.in_embed -= lr * grad_in / np.maximum(counts_in, 1)[:, None]

        grad_out = np.zeros_like(self.out_embed)
        np.add.at(grad_out, contexts, g_pos * v)
        np.add.at(grad_out, neg.reshape(-1),
                  (g_neg * v[:, None, :]).reshape(-1, self.dim))
        counts_out = (np.bincount(contexts, minlength=self.num_nodes)
                      + np.bincount(neg.reshape(-1), minlength=self.num_nodes))
        self.out_embed -= lr * grad_out / np.maximum(counts_out, 1)[:, None]

    @property
    def embeddings(self) -> np.ndarray:
        """Node representations (the input embedding matrix, as usual)."""
        return self.in_embed
