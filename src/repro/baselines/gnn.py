"""GCN, GAT, and GraphSAGE layers for the graph baselines (Sec. IV-C).

All three operate on simple drug graphs (the DDI graph or the SSG) and are
built on :mod:`repro.nn`:

- **GCN** (Kipf & Welling): ``H' = σ(Â H W)`` with the symmetric-normalised
  adjacency ``Â = D^-1/2 (A+I) D^-1/2`` as a constant sparse operator.
- **GAT** (Veličković et al.): single-head additive attention over edges,
  computed with segment-softmax per destination node.
- **GraphSAGE** (Hamilton et al.): mean aggregator,
  ``h'_i = σ(W [h_i ∥ mean_{j∈N(i)} h_j])``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core.attention import fused_kernels_enabled
from ..graphs import Graph, gcn_normalized_adjacency, row_normalized_adjacency
from ..nn import Linear, Module, Tensor, init
from ..nn import functional as F
from ..nn.functional import SegmentPartition


class GCNLayer(Module):
    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng)

    def forward(self, norm_adj: sp.spmatrix, x: Tensor) -> Tensor:
        return F.sparse_matmul(norm_adj, self.linear(x))


class GATLayer(Module):
    """Single-head graph attention with self-loops.

    Runs on the fused segment kernels by default — the additive GAT score
    ``a_src[src] + a_dst[dst]`` is expressed as the two-column bilinear form
    ``[a_src, 1] · [1, a_dst]`` so :func:`repro.nn.functional
    .incidence_scores` (with its folded LeakyReLU) and
    :func:`repro.nn.functional.segment_attend` stream the edge list
    blockwise exactly like the HyGNN encoder.  Multiplying by the constant
    1.0 columns is exact in IEEE-754 and the kernels preserve summation
    order, so fused outputs and gradients are bitwise-identical to the
    unfused composition (toggle via :func:`repro.core.attention
    .fused_kernels`, which also selects the reference path here).
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 negative_slope: float = 0.2):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng, bias=False)
        self.attn_src = init.xavier_uniform((out_dim,), rng)
        self.attn_dst = init.xavier_uniform((out_dim,), rng)
        self.negative_slope = negative_slope
        self._ones: dict[int, Tensor] = {}

    def _ones_column(self, num_nodes: int) -> Tensor:
        column = self._ones.get(num_nodes)
        if column is None:
            column = Tensor(np.ones((num_nodes, 1)))
            self._ones[num_nodes] = column
        return column

    def forward(self, edge_index: np.ndarray, num_nodes: int, x: Tensor,
                partitions: tuple[SegmentPartition,
                                  SegmentPartition] | None = None) -> Tensor:
        """``edge_index`` is (2, E) directed (both directions + self loops).

        ``partitions`` is the optional ``(dst_partition, src_partition)``
        pair grouping the edge list by destination (the softmax segments)
        and source (the backward-scatter grouping); ``GraphEncoder``
        precomputes both once per graph.
        """
        h = self.linear(x)                                     # (N, out)
        src, dst = edge_index[0], edge_index[1]
        dst_part = src_part = None
        if partitions is not None:
            dst_part, src_part = partitions
        alpha_src = (h * self.attn_src).sum(axis=1)            # (N,)
        alpha_dst = (h * self.attn_dst).sum(axis=1)
        if fused_kernels_enabled():
            ones = self._ones_column(num_nodes)
            keys = F.concat([alpha_src.reshape(-1, 1), ones], axis=1)
            queries = F.concat([ones, alpha_dst.reshape(-1, 1)], axis=1)
            scores = F.incidence_scores(keys, queries, src, dst,
                                        key_partition=src_part,
                                        query_partition=dst_part,
                                        negative_slope=self.negative_slope)
            attention = F.segment_softmax(scores, dst, num_nodes,
                                          partition=dst_part)
            return F.segment_attend(attention, h, src, dst, num_nodes,
                                    partition=dst_part,
                                    value_partition=src_part)
        scores = F.leaky_relu(
            F.gather_rows(alpha_src.reshape(-1, 1), src).reshape(len(src))
            + F.gather_rows(alpha_dst.reshape(-1, 1), dst).reshape(len(dst)),
            self.negative_slope)
        attention = F.segment_softmax(scores, dst, num_nodes,
                                      partition=dst_part)
        messages = F.gather_rows(h, src) * attention.reshape(-1, 1)
        return F.segment_sum(messages, dst, num_nodes, partition=dst_part)

    @staticmethod
    def directed_edge_index(graph: Graph) -> np.ndarray:
        """Both directions plus self-loops, shape (2, 2E + N)."""
        edges = graph.edges
        loops = np.arange(graph.num_nodes, dtype=np.int64)
        src = np.concatenate([edges[:, 0], edges[:, 1], loops])
        dst = np.concatenate([edges[:, 1], edges[:, 0], loops])
        return np.stack([src, dst])


class SAGELayer(Module):
    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.linear = Linear(2 * in_dim, out_dim, rng)

    def forward(self, mean_adj: sp.spmatrix, x: Tensor) -> Tensor:
        neighbor_mean = F.sparse_matmul(mean_adj, x)
        return self.linear(F.concat([x, neighbor_mean], axis=1))


class GraphEncoder(Module):
    """Two-layer GNN (paper: "each GNN model is used as a two-layer
    architecture") over a simple graph, with a learnable input embedding
    (the graphs carry no node features)."""

    def __init__(self, model: str, graph: Graph, dim: int,
                 rng: np.random.Generator):
        super().__init__()
        model = model.lower()
        if model not in ("gcn", "gat", "graphsage"):
            raise ValueError(f"unknown GNN model {model!r}")
        self.model = model
        self.graph = graph
        self.features = init.normal((graph.num_nodes, dim), rng, std=1.0)
        if model == "gcn":
            self.layer1 = GCNLayer(dim, dim, rng)
            self.layer2 = GCNLayer(dim, dim, rng)
            self._operator = gcn_normalized_adjacency(graph)
        elif model == "graphsage":
            self.layer1 = SAGELayer(dim, dim, rng)
            self.layer2 = SAGELayer(dim, dim, rng)
            self._operator = row_normalized_adjacency(graph)
        else:
            self.layer1 = GATLayer(dim, dim, rng)
            self.layer2 = GATLayer(dim, dim, rng)
            self._operator = GATLayer.directed_edge_index(graph)
            # Cached edge-list partitions, shared by both layers and every
            # epoch: dst groups the attention softmax segments, src the
            # fused backward scatter.
            self._partitions = (
                SegmentPartition(self._operator[1], graph.num_nodes),
                SegmentPartition(self._operator[0], graph.num_nodes))

    def forward(self) -> Tensor:
        x = self.features
        if self.model == "gat":
            h = F.elu(self.layer1(self._operator, self.graph.num_nodes, x,
                                  partitions=self._partitions))
            return self.layer2(self._operator, self.graph.num_nodes, h,
                               partitions=self._partitions)
        h = F.relu(self.layer1(self._operator, x))
        return self.layer2(self._operator, h)
