"""DeepWalk and node2vec drug embeddings (baseline family 1, Sec. IV-C).

Paper parameters: walk length 100, 10 walks per node, window size 5.  Both
methods embed the *DDI graph* built from training interactions; drug-pair
features are the concatenated embeddings fed to a logistic-regression
classifier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs import Graph
from .sgns import SkipGramModel
from .walks import node2vec_walks, skipgram_pairs, uniform_random_walks


@dataclass(frozen=True)
class WalkConfig:
    """Random-walk embedding hyper-parameters (paper Sec. IV-B)."""

    num_walks: int = 10
    walk_length: int = 100
    window: int = 5
    dim: int = 64
    epochs: int = 2
    negatives: int = 5
    learning_rate: float = 0.025
    p: float = 1.0   # node2vec return parameter
    q: float = 0.5   # node2vec in-out parameter
    seed: int = 0


def deepwalk_embeddings(graph: Graph, config: WalkConfig = WalkConfig()
                        ) -> np.ndarray:
    """DeepWalk (Perozzi et al., 2014): uniform walks + skip-gram."""
    walks = uniform_random_walks(graph, config.num_walks, config.walk_length,
                                 seed=config.seed)
    pairs = skipgram_pairs(walks, config.window, seed=config.seed)
    model = SkipGramModel(graph.num_nodes, config.dim, seed=config.seed)
    model.train(pairs, epochs=config.epochs, negatives=config.negatives,
                learning_rate=config.learning_rate)
    return model.embeddings


def node2vec_embeddings(graph: Graph, config: WalkConfig = WalkConfig()
                        ) -> np.ndarray:
    """node2vec (Grover & Leskovec, 2016): biased walks + skip-gram."""
    walks = node2vec_walks(graph, config.num_walks, config.walk_length,
                           p=config.p, q=config.q, seed=config.seed)
    pairs = skipgram_pairs(walks, config.window, seed=config.seed)
    model = SkipGramModel(graph.num_nodes, config.dim, seed=config.seed)
    model.train(pairs, epochs=config.epochs, negatives=config.negatives,
                learning_rate=config.learning_rate)
    return model.embeddings
