"""Decagon-style relational GCN baseline (Zitnik et al., 2018).

Decagon encodes a multi-modal graph (drug-drug, drug-protein,
protein-protein edges) with a relational graph convolution and decodes DDI
scores bilinearly.  The paper compares against Decagon's published TWOSIDES
numbers; here we *run* the architecture on the synthetic multi-modal graph
(:mod:`repro.data.multimodal`), keeping its defining traits:

- one weight matrix per relation type per layer,
- messages normalised by neighbour count,
- a diagonal-bilinear (DEDICOM-style) decoder for the DDI relation,
- end-to-end training on observed DDIs with negative sampling.

As in the paper, Decagon applies only to the TWOSIDES-like corpus (the
DrugBank-like corpus lacks the protein modality there).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..data.multimodal import MultiModalGraph
from ..data.splits import Split
from ..metrics import EvaluationSummary
from ..nn import Adam, Linear, Module, Tensor, bce_with_logits, init
from ..nn import functional as F


@dataclass(frozen=True)
class DecagonConfig:
    dim: int = 64
    learning_rate: float = 5e-3
    weight_decay: float = 1e-4
    epochs: int = 150
    patience: int = 25
    negatives_per_edge: int = 1
    seed: int = 0


def _row_normalized(rows: np.ndarray, cols: np.ndarray,
                    shape: tuple[int, int]) -> sp.csr_matrix:
    """Sparse operator averaging source features into destinations."""
    matrix = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=shape)
    degree = np.asarray(matrix.sum(axis=1)).reshape(-1)
    inv = np.divide(1.0, degree, out=np.zeros_like(degree), where=degree > 0)
    return (sp.diags(inv) @ matrix).tocsr()


class RelationalLayer(Module):
    """One relational GCN layer over {drug, protein} node sets."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.w_dd = Linear(dim, dim, rng, bias=False)   # drug <- drug
        self.w_dp = Linear(dim, dim, rng, bias=False)   # drug <- protein
        self.w_pd = Linear(dim, dim, rng, bias=False)   # protein <- drug
        self.w_pp = Linear(dim, dim, rng, bias=False)   # protein <- protein
        self.w_self_d = Linear(dim, dim, rng, bias=False)
        self.w_self_p = Linear(dim, dim, rng, bias=False)

    def forward(self, drug_feats: Tensor, protein_feats: Tensor,
                operators: dict[str, sp.csr_matrix]
                ) -> tuple[Tensor, Tensor]:
        drugs = (self.w_self_d(drug_feats)
                 + F.sparse_matmul(operators["dd"], self.w_dd(drug_feats))
                 + F.sparse_matmul(operators["dp"], self.w_dp(protein_feats)))
        proteins = (self.w_self_p(protein_feats)
                    + F.sparse_matmul(operators["pd"], self.w_pd(drug_feats))
                    + F.sparse_matmul(operators["pp"], self.w_pp(protein_feats)))
        return F.relu(drugs), F.relu(proteins)


class DecagonModel(Module):
    def __init__(self, num_drugs: int, num_proteins: int,
                 config: DecagonConfig):
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.drug_embed = init.normal((num_drugs, config.dim), rng, std=1.0)
        self.protein_embed = init.normal((num_proteins, config.dim), rng,
                                         std=1.0)
        self.layer1 = RelationalLayer(config.dim, rng)
        self.layer2 = RelationalLayer(config.dim, rng)
        # DEDICOM-style diagonal relation factor for the DDI relation.
        self.relation_diag = init.xavier_uniform((config.dim,), rng)

    def encode(self, operators: dict[str, sp.csr_matrix]) -> Tensor:
        drugs, proteins = self.layer1(self.drug_embed, self.protein_embed,
                                      operators)
        drugs, _ = self.layer2(drugs, proteins, operators)
        return drugs

    def score_pairs(self, drug_feats: Tensor, pairs: np.ndarray) -> Tensor:
        left = F.gather_rows(drug_feats, pairs[:, 0])
        right = F.gather_rows(drug_feats, pairs[:, 1])
        return (left * self.relation_diag * right).sum(axis=1)


class Decagon:
    """Fit/predict wrapper around the relational encoder-decoder."""

    def __init__(self, config: DecagonConfig = DecagonConfig()):
        self.config = config
        self.model: DecagonModel | None = None
        self._operators: dict[str, sp.csr_matrix] | None = None

    def _build_operators(self, graph: MultiModalGraph,
                         train_ddi: np.ndarray) -> dict[str, sp.csr_matrix]:
        nd, npr = graph.num_drugs, graph.num_proteins
        dd_rows = np.concatenate([train_ddi[:, 0], train_ddi[:, 1]])
        dd_cols = np.concatenate([train_ddi[:, 1], train_ddi[:, 0]])
        dt = graph.drug_target_pairs
        pp = graph.ppi_pairs
        pp_rows = np.concatenate([pp[:, 0], pp[:, 1]])
        pp_cols = np.concatenate([pp[:, 1], pp[:, 0]])
        return {
            "dd": _row_normalized(dd_rows, dd_cols, (nd, nd)),
            "dp": _row_normalized(dt[:, 0], dt[:, 1], (nd, npr)),
            "pd": _row_normalized(dt[:, 1], dt[:, 0], (npr, nd)),
            "pp": _row_normalized(pp_rows, pp_cols, (npr, npr)),
        }

    def fit(self, graph: MultiModalGraph, pairs: np.ndarray,
            labels: np.ndarray, split: Split) -> "Decagon":
        pairs = np.asarray(pairs, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.float64)
        train_pos = pairs[split.train][labels[split.train] == 1]
        self._operators = self._build_operators(graph, train_pos)
        self.model = DecagonModel(graph.num_drugs, graph.num_proteins,
                                  self.config)
        optimizer = Adam(self.model.parameters(),
                         lr=self.config.learning_rate,
                         weight_decay=self.config.weight_decay)
        train_pairs, train_labels = pairs[split.train], labels[split.train]
        val_pairs, val_labels = pairs[split.val], labels[split.val]

        best_val, best_state = np.inf, None
        patience_left = self.config.patience
        for _ in range(self.config.epochs):
            optimizer.zero_grad()
            drug_feats = self.model.encode(self._operators)
            logits = self.model.score_pairs(drug_feats, train_pairs)
            loss = bce_with_logits(logits, train_labels)
            loss.backward()
            optimizer.step()

            val_feats = self.model.encode(self._operators)
            val_logits = self.model.score_pairs(val_feats, val_pairs)
            val_loss = bce_with_logits(val_logits, val_labels).item()
            if val_loss < best_val - 1e-6:
                best_val, best_state = val_loss, self.model.state_dict()
                patience_left = self.config.patience
            else:
                patience_left -= 1
                if patience_left <= 0:
                    break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self

    def predict_proba(self, pairs: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("Decagon is not fitted")
        drug_feats = self.model.encode(self._operators)
        logits = self.model.score_pairs(drug_feats,
                                        np.asarray(pairs, dtype=np.int64))
        return 1.0 / (1.0 + np.exp(-np.clip(logits.numpy(), -500, 500)))

    def evaluate(self, pairs: np.ndarray,
                 labels: np.ndarray) -> EvaluationSummary:
        return EvaluationSummary.from_scores(labels,
                                             self.predict_proba(pairs))
