"""Unified baseline runner for the comparison tables (Tables V/VI, Fig. 4).

Every baseline family reduces to: build drug representations from
*training* information only, featurise pairs, classify.  The entry point
:func:`run_baseline` dispatches on the paper's row names:

- ``deepwalk`` / ``node2vec``       (RWE on DDI graph)
- ``gcn-ddi`` / ``gat-ddi`` / ``graphsage-ddi``   (GNN on DDI graph)
- ``gcn-ssg`` / ``gat-ssg`` / ``graphsage-ssg``   (GNN on SSG)
- ``caster``
- ``decagon``                        (TWOSIDES only; needs the multimodal graph)

Information hygiene: the DDI graph and Decagon's drug-drug relation use only
*training* positives; the SSG and CASTER use only SMILES (no labels).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import DDIDataset
from ..data.multimodal import build_multimodal_graph
from ..data.splits import Split
from ..data.synthetic import DrugUniverse
from ..graphs import build_ddi_graph, build_ssg_graph
from ..hypergraph import DrugHypergraphBuilder
from ..metrics import EvaluationSummary
from .caster import Caster, CasterConfig
from .classifiers import LogisticRegression, pair_features
from .decagon import Decagon, DecagonConfig
from .embeddings import WalkConfig, deepwalk_embeddings, node2vec_embeddings
from .unsupervised import UnsupervisedConfig, train_unsupervised_gnn

RWE_BASELINES = ("deepwalk", "node2vec")
GNN_MODELS = ("gcn", "gat", "graphsage")
BASELINE_NAMES = RWE_BASELINES + tuple(
    f"{m}-{g}" for g in ("ddi", "ssg") for m in GNN_MODELS
) + ("caster", "decagon")


@dataclass(frozen=True)
class BaselineConfig:
    """Shared knobs, scaled down by default to stay CPU-friendly.

    ``walk`` carries the paper's random-walk parameters; ``espf_threshold``
    and ``ssg_min_shared`` control the substructure similarity graph
    (following Bumgardner et al.); ``unsupervised`` drives the GNN families.
    """

    walk: WalkConfig = field(default_factory=WalkConfig)
    unsupervised: UnsupervisedConfig = field(default_factory=UnsupervisedConfig)
    caster: CasterConfig = field(default_factory=CasterConfig)
    decagon: DecagonConfig = field(default_factory=DecagonConfig)
    espf_threshold: int = 5
    ssg_min_shared: int = 2
    classifier_epochs: int = 300
    seed: int = 0


def _train_positive_pairs(pairs: np.ndarray, labels: np.ndarray,
                          split: Split) -> np.ndarray:
    train_pairs = pairs[split.train]
    train_labels = labels[split.train]
    return train_pairs[train_labels == 1]


def _classify(embeddings: np.ndarray, pairs: np.ndarray, labels: np.ndarray,
              split: Split, config: BaselineConfig) -> EvaluationSummary:
    classifier = LogisticRegression(epochs=config.classifier_epochs,
                                    seed=config.seed)
    classifier.fit(pair_features(embeddings, pairs[split.train]),
                   labels[split.train])
    scores = classifier.predict_proba(pair_features(embeddings,
                                                    pairs[split.test]))
    return EvaluationSummary.from_scores(labels[split.test], scores)


def run_baseline(name: str, dataset: DDIDataset, pairs: np.ndarray,
                 labels: np.ndarray, split: Split,
                 config: BaselineConfig = BaselineConfig(),
                 universe: DrugUniverse | None = None) -> EvaluationSummary:
    """Run one named baseline end to end; returns test-set metrics."""
    name = name.lower()
    if name not in BASELINE_NAMES:
        raise KeyError(f"unknown baseline {name!r}; one of {BASELINE_NAMES}")
    pairs = np.asarray(pairs, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.float64)

    if name in RWE_BASELINES:
        graph = build_ddi_graph(dataset.num_drugs,
                                _train_positive_pairs(pairs, labels, split))
        embed_fn = (deepwalk_embeddings if name == "deepwalk"
                    else node2vec_embeddings)
        embeddings = embed_fn(graph, config.walk)
        return _classify(embeddings, pairs, labels, split, config)

    if name.endswith("-ddi"):
        graph = build_ddi_graph(dataset.num_drugs,
                                _train_positive_pairs(pairs, labels, split))
        embeddings = train_unsupervised_gnn(name.split("-")[0], graph,
                                            config.unsupervised)
        return _classify(embeddings, pairs, labels, split, config)

    if name.endswith("-ssg"):
        builder = DrugHypergraphBuilder(
            method="espf", parameter=config.espf_threshold
        ).fit(dataset.smiles)
        token_sets = builder.drug_token_sets(dataset.smiles)
        graph = build_ssg_graph(token_sets, min_shared=config.ssg_min_shared)
        embeddings = train_unsupervised_gnn(name.split("-")[0], graph,
                                            config.unsupervised)
        return _classify(embeddings, pairs, labels, split, config)

    if name == "caster":
        caster = Caster(config.caster)
        caster.fit(dataset.smiles, pairs, labels, split)
        return caster.evaluate(pairs[split.test], labels[split.test])

    # Decagon: requires the multimodal substrate from the shared universe.
    if universe is None:
        raise ValueError("decagon requires the drug universe to derive the "
                         "protein modality")
    graph = build_multimodal_graph(universe, dataset, seed=config.seed)
    decagon = Decagon(config.decagon)
    decagon.fit(graph, pairs, labels, split)
    return decagon.evaluate(pairs[split.test], labels[split.test])
