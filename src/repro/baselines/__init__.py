"""``repro.baselines`` — every comparison model from the paper's Sec. IV-C.

Families: random-walk embeddings (DeepWalk, node2vec), unsupervised GNNs
(GCN/GAT/GraphSAGE on the DDI graph and on the SSG), CASTER, Decagon, and
the logistic-regression pair classifier they share.
"""

from .caster import Caster, CasterConfig, CasterModel
from .classifiers import LogisticRegression, pair_features
from .decagon import Decagon, DecagonConfig, DecagonModel
from .embeddings import WalkConfig, deepwalk_embeddings, node2vec_embeddings
from .gnn import GATLayer, GCNLayer, GraphEncoder, SAGELayer
from .runner import BASELINE_NAMES, BaselineConfig, run_baseline
from .sgns import SkipGramModel
from .unsupervised import UnsupervisedConfig, train_unsupervised_gnn
from .walks import node2vec_walks, skipgram_pairs, uniform_random_walks

__all__ = [
    "Caster", "CasterConfig", "CasterModel",
    "LogisticRegression", "pair_features",
    "Decagon", "DecagonConfig", "DecagonModel",
    "WalkConfig", "deepwalk_embeddings", "node2vec_embeddings",
    "GraphEncoder", "GCNLayer", "GATLayer", "SAGELayer",
    "BASELINE_NAMES", "BaselineConfig", "run_baseline",
    "SkipGramModel",
    "UnsupervisedConfig", "train_unsupervised_gnn",
    "uniform_random_walks", "node2vec_walks", "skipgram_pairs",
]
