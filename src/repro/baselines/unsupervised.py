"""Unsupervised GNN training (paper: "we apply three different GNN models
with unsupervised settings ... to get the representations of drugs").

The standard unsupervised objective for featureless graphs is link
reconstruction with negative sampling (as in GraphSAGE's unsupervised loss):
dot-product scores on observed edges vs random non-edges, trained with BCE.
The resulting embeddings are frozen and handed to the logistic-regression
pair classifier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs import Graph
from ..nn import Adam, Tensor, bce_with_logits
from ..nn import functional as F
from .gnn import GraphEncoder


@dataclass(frozen=True)
class UnsupervisedConfig:
    dim: int = 64
    epochs: int = 120
    learning_rate: float = 5e-3
    weight_decay: float = 1e-4
    negatives_per_edge: int = 1
    seed: int = 0


def train_unsupervised_gnn(model: str, graph: Graph,
                           config: UnsupervisedConfig = UnsupervisedConfig()
                           ) -> np.ndarray:
    """Train ``model`` ∈ {gcn, gat, graphsage} on ``graph``; return embeddings."""
    rng = np.random.default_rng(config.seed)
    encoder = GraphEncoder(model, graph, config.dim, rng)
    optimizer = Adam(encoder.parameters(), lr=config.learning_rate,
                     weight_decay=config.weight_decay)
    edges = graph.edges
    if len(edges) == 0:
        # Degenerate graph (e.g. SSG with a too-strict threshold): return the
        # untrained embedding table — downstream classifiers see noise, which
        # is the honest behaviour.
        return encoder.features.numpy().copy()

    for _ in range(config.epochs):
        optimizer.zero_grad()
        embeddings = encoder()
        neg = rng.integers(0, graph.num_nodes,
                           size=(len(edges) * config.negatives_per_edge, 2))
        neg = neg[neg[:, 0] != neg[:, 1]]
        pairs = np.concatenate([edges, neg], axis=0)
        labels = np.concatenate([np.ones(len(edges)), np.zeros(len(neg))])
        left = F.gather_rows(embeddings, pairs[:, 0])
        right = F.gather_rows(embeddings, pairs[:, 1])
        logits = (left * right).sum(axis=1)
        loss = bce_with_logits(logits, labels)
        loss.backward()
        optimizer.step()

    encoder.eval()
    return encoder().numpy().copy()
