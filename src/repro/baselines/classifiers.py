"""Logistic regression on concatenated drug-pair embeddings.

The paper feeds pair-wise concatenated drug representations into "a simple
ML classifier" (logistic regression, Sec. IV-B) for every embedding-based
baseline.  Implemented directly on numpy with full-batch gradient descent
plus L2 regularisation.
"""

from __future__ import annotations

import numpy as np


class LogisticRegression:
    """Binary logistic regression with L2 regularisation."""

    def __init__(self, learning_rate: float = 0.1, epochs: int = 300,
                 l2: float = 1e-4, seed: int = 0):
        if epochs < 1:
            raise ValueError("epochs must be positive")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.seed = seed
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return np.where(z >= 0, 1.0 / (1.0 + np.exp(-np.clip(z, -500, None))),
                        np.exp(np.clip(z, None, 500))
                        / (1.0 + np.exp(np.clip(z, None, 500))))

    def fit(self, features: np.ndarray, labels: np.ndarray
            ) -> "LogisticRegression":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        if len(features) != len(labels):
            raise ValueError("features/labels length mismatch")
        # Standardise features for well-conditioned gradients.
        self._mean = features.mean(axis=0)
        self._std = features.std(axis=0) + 1e-8
        x = (features - self._mean) / self._std
        n, d = x.shape
        rng = np.random.default_rng(self.seed)
        self.weights = rng.normal(0.0, 0.01, size=d)
        self.bias = 0.0
        # Adam for robustness on ill-scaled embeddings.
        m = np.zeros(d + 1)
        v = np.zeros(d + 1)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for t in range(1, self.epochs + 1):
            probs = self._sigmoid(x @ self.weights + self.bias)
            error = probs - labels
            grad_w = x.T @ error / n + self.l2 * self.weights
            grad_b = error.mean()
            grad = np.r_[grad_w, grad_b]
            m = beta1 * m + (1 - beta1) * grad
            v = beta2 * v + (1 - beta2) * grad * grad
            m_hat = m / (1 - beta1 ** t)
            v_hat = v / (1 - beta2 ** t)
            update = self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
            self.weights -= update[:-1]
            self.bias -= update[-1]
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("classifier is not fitted")
        x = (np.asarray(features, dtype=np.float64) - self._mean) / self._std
        return self._sigmoid(x @ self.weights + self.bias)

    def predict(self, features: np.ndarray,
                threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(features) >= threshold).astype(np.float64)


def pair_features(embeddings: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """Concatenated drug-pair features ``[h_u ∥ h_v]`` (paper Sec. IV-C)."""
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    return np.concatenate([embeddings[pairs[:, 0]], embeddings[pairs[:, 1]]],
                          axis=1)
